"""Boundary-MPS environments with incremental dirty-row invalidation.

:class:`BoundaryEnvironment` caches the upper and lower boundary MPS lists of
the ``<psi|psi>`` sandwich keyed by row:

* ``upper[i]`` has absorbed rows ``0..i-1`` from the top (``i = 0..nrow``),
* ``lower[i]`` has absorbed rows ``i+1..nrow-1`` from below (``i = 0..nrow-1``).

Both are built lazily and *incrementally*: touching row ``r`` (via
:meth:`invalidate`) stales only ``upper[i]`` for ``i > r`` and ``lower[i]``
for ``i < r``, so a subsequent query recomputes just the invalidated sweep
segments.  Exact environments close the norm at the cheapest valid
upper/lower pair (all closures are the same scalar); truncated environments
always close the full top sweep, so the norm stays a deterministic function
of (state, option) — bit-identical with the seed's ``EnvironmentCache`` —
independent of cache history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.peps.contraction.options import BMPS, ContractOption, CTMOption, Exact
from repro.peps.contraction.stats import (
    count_batched_contraction,
    count_strip_cache_hit,
    count_strip_cache_miss,
)
from repro.peps.contraction.two_layer import (
    absorb_sandwich_row,
    absorb_sandwich_row_batched,
    close_boundaries,
    trivial_boundary,
)
from repro.peps.envs.base import Environment, EnvStats, local_terms
from repro.peps.envs.sampling import sample_bitstrings
from repro.peps.envs.sampling_mc import sample_mc
from repro.peps.envs.strip import (
    StripCache,
    site_density,
    transfer_left,
    transfer_right,
)
from repro.tensornetwork.einsumsvd import EinsumSVDOption


def option_signature(contract_option: Optional[ContractOption]) -> Tuple:
    """Hashable signature of the truncation behaviour a contraction option implies.

    Two options with equal signatures produce identical boundary environments,
    so an attached environment can be reused for either.
    """
    if contract_option is None or isinstance(contract_option, Exact):
        return ("exact", None)
    if isinstance(contract_option, CTMOption):
        # tol/max_sweeps only steer convergence bookkeeping, not the cached
        # tensors, so environments with different values stay interchangeable.
        return ("ctm", contract_option.chi, contract_option.cutoff)
    if isinstance(contract_option, BMPS):
        svd = contract_option.resolved_svd_option()
        return _svd_signature(svd, svd.rank)
    raise TypeError(
        f"unsupported contraction option {type(contract_option).__name__} for environments"
    )


def _svd_signature(svd_option: Optional[EinsumSVDOption], max_bond: Optional[int]) -> Tuple:
    if svd_option is None:
        return ("exact", None)
    return (
        type(svd_option).__name__,
        max_bond,
        svd_option.cutoff,
        getattr(svd_option, "niter", None),
        getattr(svd_option, "oversample", None),
        getattr(svd_option, "seed", None),
    )


def _batch_size(backend, *tensor_lists) -> int:
    """The shot count of batched boundary tensors (leading dims are it or 1)."""
    return max(
        backend.shape(t)[0] for tensors in tensor_lists for t in tensors
    )


def _batch_item(backend, tensor, index: int):
    """Slice one shot out of a batched tensor (batch-1 tensors broadcast)."""
    arr = backend.asarray(tensor)
    item = arr[0 if backend.shape(tensor)[0] == 1 else index]
    return backend.astensor(np.asarray(item))


def _stack(backend, tensors):
    """Restack per-shot tensors along a new leading batch axis."""
    return backend.astensor(
        np.stack([np.asarray(backend.asarray(t)) for t in tensors])
    )


class BoundaryEnvironment(Environment):
    """Cached upper/lower boundary environments of one PEPS, incrementally updated.

    Parameters
    ----------
    peps:
        The :class:`~repro.peps.peps.PEPS` state the environment tracks.
    svd_option:
        ``einsumsvd`` option for the zip-up row absorptions; ``None`` absorbs
        exactly (bond dimensions multiply — small lattices only).
    max_bond:
        Boundary truncation bond ``m`` (defaults to ``svd_option.rank``).
    """

    def __init__(
        self,
        peps,
        svd_option: Optional[EinsumSVDOption] = None,
        max_bond: Optional[int] = None,
    ) -> None:
        self.peps = peps
        self.svd_option = svd_option
        if max_bond is None and svd_option is not None:
            max_bond = svd_option.rank
        self.max_bond = max_bond
        self.signature = _svd_signature(svd_option, max_bond)
        self.stats = EnvStats()
        nrow = peps.nrow
        backend = peps.backend
        self._upper: List = [trivial_boundary(backend, peps.ncol)] + [None] * nrow
        self._lower: List = [None] * (nrow - 1) + [trivial_boundary(backend, peps.ncol)]
        self._upper_valid = 0          # upper[0..k] are valid
        self._lower_valid = nrow - 1   # lower[k..nrow-1] are valid
        self._norm_sq: Optional[complex] = None

    # ------------------------------------------------------------------ #
    # Cache lifecycle
    # ------------------------------------------------------------------ #
    @property
    def backend(self):
        return self.peps.backend

    @property
    def nrow(self) -> int:
        return self.peps.nrow

    @property
    def ncol(self) -> int:
        return self.peps.ncol

    def accepts(self, contract_option: Optional[ContractOption]) -> bool:
        """Whether a caller's contraction option can be served by this environment.

        ``None`` means "no preference" and is always accepted: once an
        environment is attached, it governs the state's default contraction
        behaviour (a truncated environment makes default queries truncated).
        Pass an explicit option — or ``use_cache=False`` — to override.
        """
        if contract_option is None:
            return True
        try:
            return option_signature(contract_option) == self.signature
        except TypeError:
            return False

    def invalidate(self, rows: Optional[Iterable[int]] = None) -> None:
        if rows is None:
            self.stats.invalidations += 1
            self._upper_valid = 0
            self._lower_valid = self.nrow - 1
            self._norm_sq = None
            return
        rows = [int(r) for r in rows]
        if not rows:
            # Nothing went stale: no-op operator paths (e.g. an empty gate
            # batch) must keep the cache — including _norm_sq — warm.
            return
        self.stats.invalidations += 1
        for r in rows:
            if not (0 <= r < self.nrow):
                raise ValueError(f"row {r} outside a lattice with {self.nrow} rows")
            self._upper_valid = min(self._upper_valid, r)
            self._lower_valid = max(self._lower_valid, r)
        self._norm_sq = None

    def build(self) -> "BoundaryEnvironment":
        self.ensure_upper(self.nrow)
        self.ensure_lower(0)
        return self

    def _absorb(self, boundary, row: int, from_below: bool = False):
        self.stats.row_absorptions += 1
        return absorb_sandwich_row(
            boundary,
            self.peps.grid[row],
            self.peps.grid[row],
            option=self.svd_option,
            max_bond=self.max_bond,
            backend=self.backend,
            from_below=from_below,
        )

    def ensure_upper(self, i: int):
        """Validate and return ``upper[i]`` (rows ``0..i-1`` absorbed from the top)."""
        if not (0 <= i <= self.nrow):
            raise ValueError(f"upper boundary index {i} outside 0..{self.nrow}")
        while self._upper_valid < i:
            k = self._upper_valid
            self._upper[k + 1] = self._absorb(self._upper[k], k)
            self._upper_valid += 1
        return self._upper[i]

    def ensure_lower(self, i: int):
        """Validate and return ``lower[i]`` (rows ``i+1..nrow-1`` absorbed from below)."""
        if not (0 <= i <= self.nrow - 1):
            raise ValueError(f"lower boundary index {i} outside 0..{self.nrow - 1}")
        while self._lower_valid > i:
            k = self._lower_valid
            self._lower[k - 1] = self._absorb(self._lower[k], k, from_below=True)
            self._lower_valid -= 1
        return self._lower[i]

    def rescale_cached(self, factor: complex) -> None:
        """Rescale cached boundaries after every site tensor was scaled by ``factor``.

        A boundary that absorbed ``k`` sites (ket and bra layers) scales by
        ``|factor|^(2k)``, so the cache stays warm through in-place
        normalization instead of being invalidated.
        """
        layer = complex(factor) * np.conj(complex(factor))  # per ket+bra site pair
        ncol = self.ncol
        for i in range(1, self._upper_valid + 1):
            scale = layer ** (i * ncol)
            boundary = self._upper[i]
            self._upper[i] = [boundary[0] * scale] + list(boundary[1:])
        for i in range(self._lower_valid, self.nrow - 1):
            scale = layer ** ((self.nrow - 1 - i) * ncol)
            boundary = self._lower[i]
            self._lower[i] = [boundary[0] * scale] + list(boundary[1:])
        if self._norm_sq is not None:
            self._norm_sq = self._norm_sq * layer ** self.peps.n_sites

    # ------------------------------------------------------------------ #
    # Cached queries
    # ------------------------------------------------------------------ #
    def _absorbs_exactly(self) -> bool:
        """Whether row absorptions are exact (no truncation ever happens)."""
        return self.svd_option is None

    def _norm_meeting_row(self) -> int:
        """The row ``i`` whose ``upper[i] x lower[i-1]`` closure serves the norm."""
        if self._absorbs_exactly():
            # Exact absorptions: every upper[i]/lower[i-1] closure is the
            # same scalar, so close the pair needing the fewest new
            # absorptions (ties prefer the larger meeting row, matching
            # the seed's upper[nrow] x trivial closure on a cold cache).
            best_i, best_cost = None, None
            for i in range(self.nrow, 0, -1):
                cost = max(0, i - self._upper_valid) + max(0, self._lower_valid - (i - 1))
                if best_cost is None or cost < best_cost:
                    best_i, best_cost = i, cost
            return best_i
        # Truncated absorptions: different meeting rows give slightly
        # different estimates, so always close the full top sweep to
        # keep the norm a deterministic function of (state, option)
        # regardless of cache/invalidation history.
        return self.nrow

    def norm_sq(self) -> complex:
        if self._norm_sq is None:
            self.stats.norm_evaluations += 1
            best_i = self._norm_meeting_row()
            upper = self.ensure_upper(best_i)
            lower = self.ensure_lower(best_i - 1)
            self._norm_sq = close_boundaries(self.backend, upper, lower)
        return self._norm_sq

    def expectation(self, observable, normalized: bool = True) -> float:
        terms = local_terms(observable)
        # The norm is only needed for normalization and zero-site (constant)
        # terms; avoid forcing a full top sweep for unnormalized local sums.
        norm_sq = self.norm_sq() if normalized else None
        total = 0.0 + 0.0j
        caches: Dict[Tuple[int, int], StripCache] = {}
        for sites, matrix in terms:
            if len(sites) == 0:
                if norm_sq is None:
                    norm_sq = self.norm_sq()
                total += complex(matrix[0, 0]) * norm_sq
                continue
            r0, r1, _ = self._term_rows(sites)
            self.stats.strip_contractions += 1
            total += self._strip_cache(caches, r0, r1).term_value(sites, matrix)
        self._charge_strip_caches(caches)
        value = total / norm_sq if normalized else total
        return float(np.real(value))

    def measure_1site(
        self,
        operator,
        sites: Optional[Sequence[int]] = None,
        normalized: bool = True,
    ) -> Dict[int, Union[float, complex]]:
        """Batched single-site expectation values, one cached pass per lattice row.

        ``operator`` is either one ``d x d`` matrix applied at every requested
        site or a mapping ``site -> matrix``; ``sites`` defaults to all sites
        (or the mapping's keys).  Each row costs ``O(ncol)`` transfer
        contractions regardless of how many of its sites are measured.
        """
        peps = self.peps
        if isinstance(operator, dict):
            op_map = {int(s): np.asarray(m, dtype=np.complex128) for s, m in operator.items()}
            wanted = sorted(op_map) if sites is None else [int(s) for s in sites]
            missing = [s for s in wanted if s not in op_map]
            if missing:
                raise ValueError(f"no operator given for sites {missing}")
        else:
            matrix = np.asarray(operator, dtype=np.complex128)
            wanted = list(range(peps.n_sites)) if sites is None else [int(s) for s in sites]
            op_map = {s: matrix for s in wanted}
        # Duplicate requested sites would desynchronize the per-row zip
        # against the deduplicated column densities.
        wanted = sorted(set(wanted))

        norm_sq = self.norm_sq() if normalized else None
        by_row: Dict[int, List[int]] = {}
        for s in wanted:
            r, _ = peps.site_position(s)
            by_row.setdefault(r, []).append(s)

        out: Dict[int, float] = {}
        for r in sorted(by_row):
            row_sites = sorted(by_row[r], key=lambda s: peps.site_position(s)[1])
            cols = [peps.site_position(s)[1] for s in row_sites]
            densities = self._row_densities(r, cols)
            for s, rho in zip(row_sites, densities):
                value = complex(np.sum(op_map[s] * rho))
                out[s] = float(np.real(value / norm_sq)) if normalized else value
        return out

    def measure_2site(
        self,
        operator_a,
        operator_b=None,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        normalized: bool = True,
    ) -> Dict[Tuple[int, int], Union[float, complex]]:
        """Batched two-site expectation values over site pairs.

        ``operator_a``/``operator_b`` are ``d x d`` single-site factors (the
        pair operator is their Kronecker product with the first site of each
        pair as the most significant qubit); alternatively pass one full
        ``d^2 x d^2`` matrix as ``operator_a``.  ``pairs`` defaults to all
        nearest-neighbour pairs.  The environments are built once and every
        pair costs only one strip contraction.
        """
        peps = self.peps
        if operator_b is not None:
            matrix = np.kron(
                np.asarray(operator_a, dtype=np.complex128),
                np.asarray(operator_b, dtype=np.complex128),
            )
        else:
            matrix = np.asarray(operator_a, dtype=np.complex128)
        if pairs is None:
            pairs = []
            for r in range(peps.nrow):
                for c in range(peps.ncol):
                    s = r * peps.ncol + c
                    if c + 1 < peps.ncol:
                        pairs.append((s, s + 1))
                    if r + 1 < peps.nrow:
                        pairs.append((s, s + peps.ncol))

        norm_sq = self.norm_sq() if normalized else None
        out: Dict[Tuple[int, int], float] = {}
        caches: Dict[Tuple[int, int], StripCache] = {}
        for pair in pairs:
            sa, sb = int(pair[0]), int(pair[1])
            r0, r1, _ = self._term_rows((sa, sb))
            self.stats.strip_contractions += 1
            value = self._strip_cache(caches, r0, r1).term_value((sa, sb), matrix)
            out[(sa, sb)] = float(np.real(value / norm_sq)) if normalized else value
        self._charge_strip_caches(caches)
        return out

    def sample(
        self,
        rng=None,
        nshots: int = 1,
        batch_shots: Optional[int] = None,
        sampler: str = "perfect",
        sampler_options: Optional[Dict] = None,
    ) -> np.ndarray:
        """Basis-state samples, perfect conditional or Markov-chain.

        Returns an integer array of shape ``(nshots, n_sites)`` (row-major
        site order).  The default ``sampler="perfect"`` draws independent
        samples via conditional single-layer contractions: the cached lower
        environments are shared by all shots; only the per-shot projected
        upper boundaries are recomputed — in lockstep groups of up to
        ``batch_shots`` shots when the environment
        :meth:`supports_lockstep` (``None``: all shots in one group,
        ``1``: the serial reference path; the bits are identical either way).
        ``sampler="mc"`` runs one Metropolis chain per shot instead
        (:func:`~repro.peps.envs.sampling_mc.sample_mc`); ``sampler_options``
        forwards its keywords (e.g. ``{"sweeps": 64}``).
        """
        options = dict(sampler_options or {})
        if sampler == "perfect":
            if options:
                raise ValueError(
                    f"the perfect sampler takes no options, got {sorted(options)}"
                )
            return sample_bitstrings(
                self, rng=rng, nshots=nshots, batch_shots=batch_shots
            )
        if sampler == "mc":
            return sample_mc(self, rng=rng, nshots=nshots, **options)
        raise ValueError(
            f"unknown sampler kind {sampler!r}; known: ['mc', 'perfect']"
        )

    def supports_lockstep(self) -> bool:
        """Whether per-shot sampling boundaries keep shot-independent shapes.

        Lockstep batching stacks every shot's boundary into one tensor per
        column, which requires all shots to share shapes after truncation.
        Exact and fixed-rank truncations are shape-deterministic; a
        cutoff-based truncation retains data-dependent ranks, so those
        environments run the serial sampler.
        """
        return self.svd_option is None or self.svd_option.cutoff is None

    def absorb_for_sampling(self, upper, projected_row):
        """Absorb one basis-projected row into a per-shot upper boundary.

        The sampling sweep (:func:`~repro.peps.envs.sampling.sample_bitstrings`)
        routes its boundary growth through this hook so each environment
        truncates the projected boundaries with its own scheme.
        """
        self.stats.row_absorptions += 1
        return absorb_sandwich_row(
            upper,
            projected_row,
            projected_row,
            option=self.svd_option,
            max_bond=self.max_bond,
            backend=self.backend,
        )

    def absorb_for_sampling_batched(self, upper, projected_row):
        """Absorb one basis-projected row into a whole batch of shot boundaries.

        ``upper`` and ``projected_row`` tensors carry a leading batch axis
        (shot count or broadcastable 1).  Exact environments absorb the
        entire batch with one batched contraction per column; truncated ones
        unstack, absorb each shot with the environment's own zip-up scheme,
        and restack — valid because :meth:`supports_lockstep` guarantees
        shot-independent shapes.
        """
        b = self.backend
        batch = _batch_size(b, upper, projected_row)
        self.stats.row_absorptions += batch
        if self.svd_option is None:
            self.stats.batched_contractions += len(upper)
            count_batched_contraction(len(upper))
            return absorb_sandwich_row_batched(b, upper, projected_row, projected_row)
        columns = []
        for s in range(batch):
            upper_s = [_batch_item(b, t, s) for t in upper]
            row_s = [_batch_item(b, t, s) for t in projected_row]
            columns.append(
                absorb_sandwich_row(
                    upper_s,
                    row_s,
                    row_s,
                    option=self.svd_option,
                    max_bond=self.max_bond,
                    backend=b,
                )
            )
        return [_stack(b, [columns[s][c] for s in range(batch)]) for c in range(len(upper))]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _strip_cache(
        self, caches: Dict[Tuple[int, int], "StripCache"], r0: int, r1: int
    ) -> "StripCache":
        """The shared column-environment cache of strip ``(r0, r1)`` of one pass.

        Terms on the same rows share left/right traced environments through
        it, so each additional term only contracts its own column span.
        """
        cache = caches.get((r0, r1))
        if cache is None:
            upper = self.ensure_upper(r0)
            lower = self.ensure_lower(r1)
            cache = StripCache(self.peps, upper, lower, r0, r1)
            caches[(r0, r1)] = cache
        return cache

    def _charge_strip_caches(
        self, caches: Dict[Tuple[int, int], "StripCache"]
    ) -> None:
        """Fold one pass's per-strip hit/miss counts into the stats."""
        hits = sum(cache.hits for cache in caches.values())
        misses = sum(cache.misses for cache in caches.values())
        if hits:
            self.stats.strip_cache_hits += hits
            count_strip_cache_hit(hits)
        if misses:
            self.stats.strip_cache_misses += misses
            count_strip_cache_miss(misses)

    def _term_rows(self, sites: Sequence[int]) -> Tuple[int, int, List[Tuple[int, int]]]:
        positions = [self.peps.site_position(s) for s in sites]
        rows = [r for r, _ in positions]
        r0, r1 = min(rows), max(rows)
        if r1 - r0 > 1:
            raise ValueError(
                f"term on sites {tuple(sites)} spans rows {r0}..{r1}; only terms within "
                f"two adjacent rows are supported"
            )
        return r0, r1, positions

    def _row_densities(self, r: int, cols: Sequence[int]) -> List[np.ndarray]:
        """Local reduced density matrices ``rho[bra, ket]`` for sites of row ``r``.

        One left-to-right and one right-to-left transfer sweep over the strip
        ``upper[r] x row r x lower[r]`` serves every requested column.
        """
        b = self.backend
        ncol = self.ncol
        upper = self.ensure_upper(r)
        lower = self.ensure_lower(r)
        kets = self.peps.grid[r]
        bras = [b.conj(t) for t in kets]
        cols = sorted(set(int(c) for c in cols))
        if not cols:
            return []

        right: List = [None] * (ncol + 1)
        right[ncol] = b.ones((1, 1, 1, 1))
        for c in range(ncol - 1, cols[0], -1):
            right[c] = transfer_right(b, upper[c], kets[c], bras[c], lower[c], right[c + 1])

        out: List[np.ndarray] = []
        want = set(cols)
        left = b.ones((1, 1, 1, 1))
        for c in range(cols[-1] + 1):
            if c in want:
                rho = site_density(
                    b, left, upper[c], kets[c], bras[c], lower[c], right[c + 1]
                )
                out.append(np.asarray(b.asarray(rho)))
            if c < cols[-1]:
                left = transfer_left(b, left, upper[c], kets[c], bras[c], lower[c])
        return out
