"""Corner-transfer-matrix (CTM) environments of a finite PEPS.

:class:`EnvCTM` is the third implementation of the
:class:`~repro.peps.envs.base.Environment` protocol, next to
:class:`~repro.peps.envs.exact.EnvExact` and
:class:`~repro.peps.envs.boundary_mps.EnvBoundaryMPS`.  Like them it caches
directional boundaries of the ``<psi|psi>`` sandwich keyed by row, but the
boundaries are renormalized CTM-style instead of zip-up-style:

* A **move** absorbs one lattice row into an edge-tensor boundary exactly
  (horizontal bonds multiply) and then renormalizes every internal bond back
  to the environment bond ``chi`` with a pair of oblique projectors.
* The projectors at a bond are built from the two **corner transfer
  matrices** meeting there: the Gram matrices ``C_L = <half|half>`` of the
  boundary columns left of the bond and ``C_R`` of the columns right of it —
  the corner matrices of the doubled (reflection-symmetrized) half-system.
  With ``C_L = A_L^dagger A_L`` and ``C_R = A_R A_R^dagger``, the truncated
  SVD ``A_L A_R ~= U S V^dagger`` (``repro.linalg.truncated_svd``) gives the
  projector pair ``P_in = A_R V S^(-1/2)``, ``P_out = S^(-1/2) U^dagger A_L``
  with ``P_out P_in = 1`` — the standard corner-spectrum truncation.
* The retained, normalized singular values ``S`` are the **corner spectrum**
  of that bond.  Every move records its spectra, and :meth:`EnvCTM.build`
  iterates sweeps of stale moves until no spectrum shifts by more than the
  option's ``tol`` — the convergence criterion of the CTM power iteration.
  On a finite lattice the moves are deterministic, so a cold build converges
  right after its first sweep; the criterion earns its keep after
  *incremental invalidation*, where only the moves whose absorbed rows went
  stale are re-converged.

The cached boundaries share the edge-tensor layout of
:class:`~repro.peps.envs.boundary.BoundaryEnvironment` (one
``(left, ket, bra, right)`` tensor per column), so all cached queries —
norm, batched measurements, strip expectation values and conditional
sampling — run unchanged on CTM-renormalized environments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.truncated_svd import truncated_svd
from repro.peps.contraction.options import ContractOption, CTMOption
from repro.peps.contraction.stats import count_batched_contraction, count_ctm_move
from repro.peps.contraction.two_layer import (
    absorb_sandwich_row,
    absorb_sandwich_row_batched,
)
from repro.peps.envs.boundary import BoundaryEnvironment, _batch_size
from repro.telemetry.trace import span as _span

#: Relative floor under which corner-Gram singular directions are treated as
#: numerically zero when forming ``S^(-1/2)`` (pseudo-inverse regularization).
PSEUDO_INVERSE_RTOL = 1e-14


# --------------------------------------------------------------------- #
# Corner Gram matrices and projector pairs
# --------------------------------------------------------------------- #
def corner_grams(backend, boundary: Sequence) -> Tuple[List, List]:
    """The corner Gram matrices at every internal bond of a boundary row.

    For the bond between columns ``b-1`` and ``b`` (``b = 1..ncol-1``):

    * ``lefts[b]`` — Gram matrix ``<left half|left half>`` of columns
      ``0..b-1``, legs ``(bond, bond*)``: the left corner transfer matrix of
      the doubled half-system,
    * ``rights[b]`` — the same for columns ``b..ncol-1``: the right corner.

    Index 0 of both lists is unused (there is no bond left of column 0).
    """
    ncol = len(boundary)
    conj = [backend.conj(t) for t in boundary]
    lefts: List = [None] * ncol
    rights: List = [None] * ncol
    if ncol < 2:
        return lefts, rights
    gram = backend.einsum("aqpr,aqps->rs", boundary[0], conj[0])
    lefts[1] = gram
    for c in range(1, ncol - 1):
        gram = backend.einsum("ab,aqpr,bqps->rs", gram, boundary[c], conj[c])
        lefts[c + 1] = gram
    gram = backend.einsum("aqpr,bqpr->ab", boundary[ncol - 1], conj[ncol - 1])
    rights[ncol - 1] = gram
    for c in range(ncol - 2, 0, -1):
        gram = backend.einsum("aqpr,bqps,rs->ab", boundary[c], conj[c], gram)
        rights[c] = gram
    return lefts, rights


def _gram_half(gram: np.ndarray) -> np.ndarray:
    """A half factor ``A`` with ``A^dagger A = gram`` (Hermitian PSD input).

    Returned with legs ``(internal, bond)``; negative eigenvalues from
    round-off are clipped to zero.
    """
    hermitized = (gram + gram.conj().T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(hermitized)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return np.sqrt(eigenvalues)[:, None] * eigenvectors.conj().T


def bond_projectors(
    backend,
    left_gram,
    right_gram,
    chi: Optional[int],
    cutoff: Optional[float],
) -> Tuple[Optional[Tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Oblique projector pair and corner spectrum for one boundary bond.

    Returns ``((absorb_left, absorb_right), spectrum)`` where
    ``absorb_left`` (``(chi, bond)``) contracts into the left leg of the
    tensor right of the bond and ``absorb_right`` (``(bond, chi)``) into the
    right leg of the tensor left of it, with
    ``absorb_left @ absorb_right = 1``.  The projector pair is ``None`` when
    no truncation is needed (the bond already satisfies ``chi``/``cutoff``),
    so exact bonds stay bitwise untouched.  ``spectrum`` is the normalized
    retained corner spectrum.
    """
    left = np.asarray(backend.asarray(left_gram))
    right = np.asarray(backend.asarray(right_gram))
    half_left = _gram_half(left)                 # (alpha, bond)
    half_right = _gram_half(right).conj().T      # (bond, beta)
    product = half_left @ half_right
    result = truncated_svd(
        backend, backend.astensor(product), rank=chi, cutoff=cutoff, absorb="none"
    )
    s = np.asarray(result.s, dtype=float)
    total = float(np.linalg.norm(s))
    spectrum = s / total if total > 0.0 else s
    bond_dim = product.shape[0]
    if result.rank >= bond_dim:
        return None, spectrum
    u = np.asarray(backend.asarray(result.u))    # (alpha, k)
    vh = np.asarray(backend.asarray(result.vh))  # (k, beta)
    inv_sqrt = np.zeros_like(s)
    significant = s > (s[0] * PSEUDO_INVERSE_RTOL if s.size else 0.0)
    inv_sqrt[significant] = 1.0 / np.sqrt(s[significant])
    absorb_right = half_right @ vh.conj().T * inv_sqrt[None, :]   # (bond, k)
    absorb_left = inv_sqrt[:, None] * (u.conj().T @ half_left)    # (k, bond)
    return (absorb_left, absorb_right), spectrum


def ctm_renormalize(
    backend,
    boundary: Sequence,
    chi: Optional[int],
    cutoff: Optional[float],
) -> Tuple[List, List[np.ndarray]]:
    """Renormalize every internal bond of a boundary row with corner projectors.

    All projectors are computed from the *unrenormalized* boundary first and
    applied afterwards, so each bond's truncation sees the exact corner Gram
    matrices.  Returns the renormalized boundary and the list of normalized
    corner spectra (one per internal bond, left to right).
    """
    ncol = len(boundary)
    if ncol < 2:
        return list(boundary), []
    lefts, rights = corner_grams(backend, boundary)
    pairs: List = [None] * ncol
    spectra: List[np.ndarray] = []
    for b in range(1, ncol):
        pair, spectrum = bond_projectors(backend, lefts[b], rights[b], chi, cutoff)
        pairs[b] = pair
        spectra.append(spectrum)
    renormalized: List = []
    for c in range(ncol):
        tensor = boundary[c]
        if pairs[c] is not None:
            absorb_left = backend.astensor(pairs[c][0])
            tensor = backend.einsum("kl,lqpr->kqpr", absorb_left, tensor)
        if c + 1 < ncol and pairs[c + 1] is not None:
            absorb_right = backend.astensor(pairs[c + 1][1])
            tensor = backend.einsum("aqpl,lk->aqpk", tensor, absorb_right)
        renormalized.append(tensor)
    return renormalized, spectra


def corner_grams_batched(backend, boundary: Sequence) -> Tuple[List, List, int]:
    """Batched :func:`corner_grams`: one Gram chain per bond for all shots.

    ``boundary`` tensors carry a leading batch axis; every Gram recursion
    step is one ``einsum_batched`` call instead of one call per shot.
    Returns ``(lefts, rights, n_calls)`` with batched ``(batch, bond, bond)``
    Gram matrices.
    """
    ncol = len(boundary)
    conj = [backend.conj(t) for t in boundary]
    lefts: List = [None] * ncol
    rights: List = [None] * ncol
    calls = 0
    if ncol < 2:
        return lefts, rights, calls
    gram = backend.einsum_batched("aqpr,aqps->rs", boundary[0], conj[0])
    calls += 1
    lefts[1] = gram
    for c in range(1, ncol - 1):
        gram = backend.einsum_batched("ab,aqpr,bqps->rs", gram, boundary[c], conj[c])
        calls += 1
        lefts[c + 1] = gram
    gram = backend.einsum_batched("aqpr,bqpr->ab", boundary[ncol - 1], conj[ncol - 1])
    calls += 1
    rights[ncol - 1] = gram
    for c in range(ncol - 2, 0, -1):
        gram = backend.einsum_batched("aqpr,bqps,rs->ab", boundary[c], conj[c], gram)
        calls += 1
        rights[c] = gram
    return lefts, rights, calls


def ctm_renormalize_batched(
    backend,
    boundary: Sequence,
    chi: Optional[int],
    cutoff: Optional[float],
) -> Tuple[List, int]:
    """Batched :func:`ctm_renormalize` over a leading shot axis.

    The Gram chains and the projector applications run as batched
    contractions; only the per-shot ``chi``-sized corner SVDs inside
    :func:`bond_projectors` stay per-item (they are small dense
    factorizations, not einsum calls).  Requires a shape-deterministic
    truncation (``cutoff=None``) so every shot retains the same rank at each
    bond.  Returns ``(renormalized, n_batched_calls)``.
    """
    ncol = len(boundary)
    if ncol < 2:
        return list(boundary), 0
    batch = _batch_size(backend, boundary)
    lefts, rights, calls = corner_grams_batched(backend, boundary)
    pairs: List = [None] * ncol
    for bond in range(1, ncol):
        left_arr = np.asarray(backend.asarray(lefts[bond]))
        right_arr = np.asarray(backend.asarray(rights[bond]))
        if left_arr.shape[0] == 1:
            left_arr = np.broadcast_to(left_arr, (batch,) + left_arr.shape[1:])
        if right_arr.shape[0] == 1:
            right_arr = np.broadcast_to(right_arr, (batch,) + right_arr.shape[1:])
        per_shot = [
            bond_projectors(
                backend,
                backend.astensor(np.asarray(left_arr[s])),
                backend.astensor(np.asarray(right_arr[s])),
                chi,
                cutoff,
            )[0]
            for s in range(batch)
        ]
        truncating = [p for p in per_shot if p is not None]
        if not truncating:
            continue
        if len(truncating) != batch:
            raise RuntimeError(
                f"bond {bond} truncates for {len(truncating)}/{batch} shots; "
                f"lockstep CTM renormalization needs a shape-deterministic "
                f"truncation (cutoff=None)"
            )
        pairs[bond] = (
            backend.astensor(np.stack([p[0] for p in per_shot])),
            backend.astensor(np.stack([p[1] for p in per_shot])),
        )
    renormalized: List = []
    for c in range(ncol):
        tensor = boundary[c]
        if pairs[c] is not None:
            tensor = backend.einsum_batched("kl,lqpr->kqpr", pairs[c][0], tensor)
            calls += 1
        if c + 1 < ncol and pairs[c + 1] is not None:
            tensor = backend.einsum_batched("aqpl,lk->aqpk", tensor, pairs[c + 1][1])
            calls += 1
        renormalized.append(tensor)
    return renormalized, calls


def spectra_distance(
    previous: Optional[List[np.ndarray]], current: List[np.ndarray]
) -> float:
    """Infinity-norm distance between two corner-spectrum sets of one move.

    ``inf`` when the move has no previous spectra (a fresh move); spectra of
    different retained ranks are compared zero-padded to a common length.
    """
    if previous is None:
        return float("inf")
    if len(previous) != len(current):
        return float("inf")
    distance = 0.0
    for old, new in zip(previous, current):
        length = max(len(old), len(new))
        if length == 0:
            continue
        padded_old = np.zeros(length)
        padded_old[: len(old)] = old
        padded_new = np.zeros(length)
        padded_new[: len(new)] = new
        distance = max(distance, float(np.max(np.abs(padded_old - padded_new))))
    return distance


# --------------------------------------------------------------------- #
# The environment
# --------------------------------------------------------------------- #
class EnvCTM(BoundaryEnvironment):
    """Corner-transfer-matrix environment of one PEPS.

    Parameters
    ----------
    peps:
        The :class:`~repro.peps.peps.PEPS` state the environment tracks.
    contract_option:
        A :class:`~repro.peps.contraction.options.CTMOption`; its ``chi`` is
        the environment bond the corner projectors truncate to (``None``
        never truncates) and ``tol``/``max_sweeps`` steer the convergence
        sweeps of :meth:`build`.

    Every directional move is counted in ``stats.ctm_moves`` (and, for
    cross-implementation comparisons, also in ``stats.row_absorptions``).
    The per-move corner spectra live in :attr:`upper_spectra` /
    :attr:`lower_spectra` keyed by boundary level and are serialized with
    the environment, so checkpoints resume with converged CTM state.
    """

    def __init__(self, peps, contract_option: Optional[ContractOption] = None) -> None:
        option = contract_option if contract_option is not None else CTMOption()
        if not isinstance(option, CTMOption):
            raise TypeError(
                f"EnvCTM needs a CTMOption contraction option, "
                f"got {type(option).__name__}"
            )
        if option.chi is not None and option.chi < 1:
            raise ValueError(f"chi must be positive, got {option.chi}")
        super().__init__(peps, svd_option=None, max_bond=None)
        self.contract_option = option
        self.chi = option.chi
        self.cutoff = option.cutoff
        self.signature = ("ctm", option.chi, option.cutoff)
        #: normalized corner spectra per boundary level (level -> per-bond list)
        self.upper_spectra: Dict[int, List[np.ndarray]] = {}
        self.lower_spectra: Dict[int, List[np.ndarray]] = {}
        #: outcome of the last :meth:`build` convergence loop
        self.converged = False
        self.n_sweeps = 0
        self.last_spectra_delta = float("inf")
        self._sweep_deltas: List[float] = []

    # ------------------------------------------------------------------ #
    # Moves
    # ------------------------------------------------------------------ #
    def _absorbs_exactly(self) -> bool:
        return self.chi is None and self.cutoff is None

    def _absorb(self, boundary, row: int, from_below: bool = False):
        """One CTM move: exact row absorption plus corner-projector renormalization."""
        self.stats.row_absorptions += 1
        self.stats.ctm_moves += 1
        count_ctm_move()
        with _span("ctm_move", row=row, from_below=from_below):
            grown = absorb_sandwich_row(
                boundary,
                self.peps.grid[row],
                self.peps.grid[row],
                option=None,
                backend=self.backend,
                from_below=from_below,
            )
            if self._absorbs_exactly():
                renormalized, spectra = grown, []
            else:
                renormalized, spectra = ctm_renormalize(
                    self.backend, grown, self.chi, self.cutoff
                )
        if from_below:
            self._record_spectra(self.lower_spectra, row - 1, spectra)
        else:
            self._record_spectra(self.upper_spectra, row + 1, spectra)
        return renormalized

    def _record_spectra(
        self, store: Dict[int, List[np.ndarray]], level: int, spectra: List[np.ndarray]
    ) -> None:
        self._sweep_deltas.append(spectra_distance(store.get(level), spectra))
        store[level] = spectra

    def absorb_for_sampling(self, upper, projected_row):
        """Absorb one basis-projected row CTM-style into a per-shot boundary."""
        self.stats.row_absorptions += 1
        self.stats.ctm_moves += 1
        count_ctm_move()
        grown = absorb_sandwich_row(
            upper,
            projected_row,
            projected_row,
            option=None,
            backend=self.backend,
        )
        if self._absorbs_exactly():
            return grown
        renormalized, _ = ctm_renormalize(self.backend, grown, self.chi, self.cutoff)
        return renormalized

    def supports_lockstep(self) -> bool:
        """Fixed-``chi`` corner truncations are shape-deterministic across
        shots; a ``cutoff`` retains data-dependent ranks, forcing the serial
        sampler."""
        return self.cutoff is None

    def absorb_for_sampling_batched(self, upper, projected_row):
        """Absorb one basis-projected row CTM-style into a batch of boundaries.

        The exact growth and the corner-Gram chains run as batched
        contractions covering every shot at once; only the small per-shot
        corner SVDs stay per-item.
        """
        b = self.backend
        batch = _batch_size(b, upper, projected_row)
        self.stats.row_absorptions += batch
        self.stats.ctm_moves += batch
        count_ctm_move(batch)
        grown = absorb_sandwich_row_batched(b, upper, projected_row, projected_row)
        calls = len(grown)
        if not self._absorbs_exactly():
            grown, renorm_calls = ctm_renormalize_batched(b, grown, self.chi, self.cutoff)
            calls += renorm_calls
        self.stats.batched_contractions += calls
        count_batched_contraction(calls)
        return grown

    # ------------------------------------------------------------------ #
    # Convergence
    # ------------------------------------------------------------------ #
    def build(self) -> "EnvCTM":
        """Converge the CTM power iteration over all stale moves.

        Sweeps re-run every stale directional move (and only those — warm
        levels are reused) until no move shifts its normalized corner
        spectra by more than the option's ``tol``, or ``max_sweeps`` is
        reached.  On a finite lattice a sweep that performed no moves has
        already converged, so the loop terminates one check after the last
        stale move ran.
        """
        option = self.contract_option
        self.converged = False
        self.n_sweeps = 0
        for _ in range(max(1, int(option.max_sweeps))):
            self._sweep_deltas = []
            self.ensure_upper(self.nrow)
            self.ensure_lower(0)
            self.n_sweeps += 1
            self.last_spectra_delta = max(self._sweep_deltas, default=0.0)
            if self.last_spectra_delta <= option.tol:
                self.converged = True
                break
        return self

    def corner_spectrum(self, level: int, lower: bool = False) -> List[np.ndarray]:
        """The recorded corner spectra of one boundary level (diagnostics)."""
        store = self.lower_spectra if lower else self.upper_spectra
        if level not in store:
            raise KeyError(f"no corner spectra recorded for level {level}")
        return store[level]

    def __repr__(self) -> str:
        return f"EnvCTM({self.peps!r}, {self.contract_option.describe()})"
