"""The abstract PEPS environment protocol.

An :class:`Environment` owns the cached contraction state of a single PEPS —
typically the upper/lower boundary MPS lists of the ``<psi|psi>`` sandwich
(Section IV-B of the paper) — and exposes every operation that benefits from
that cache:

* ``norm`` / ``norm_sq`` — the state norm from the cached boundaries,
* ``expectation(terms)`` — a sum of local terms evaluated with one shared
  pair of boundary sweeps instead of one full contraction per term,
* ``measure_1site`` / ``measure_2site`` — batched local measurements of all
  requested sites/pairs in one cached pass,
* ``sample`` — basis-state sampling via conditional single-layer
  contractions that reuse the cached lower environments across shots.

Environments support *incremental dirty-row invalidation*:
:meth:`Environment.invalidate` marks a set of lattice rows stale, and a
subsequent query recomputes only the invalidated sweep segments instead of
all ``O(nrow)`` row absorptions.  :class:`~repro.peps.peps.PEPS` calls
``invalidate`` automatically from its operator-application paths when an
environment is attached via :meth:`~repro.peps.peps.PEPS.attach_environment`.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

#: The counters one environment maintains, in declaration order.
ENV_STAT_FIELDS = (
    "row_absorptions",
    "strip_contractions",
    "invalidations",
    "norm_evaluations",
    "ctm_moves",
    "batched_contractions",
    "uniform_fallbacks",
    "strip_cache_hits",
    "strip_cache_misses",
)


class EnvStats:
    """Counters describing the work an environment has performed.

    ``row_absorptions`` is the load-bearing one: each unit is one boundary-MPS
    row absorption (the dominant cost of every PEPS contraction), so it
    measures how much recomputation the incremental invalidation saved.
    ``ctm_moves`` counts the corner-transfer-matrix moves of
    :class:`~repro.peps.envs.ctm.EnvCTM` (each move also counts as one row
    absorption, keeping the shared counter comparable across environments).

    The batched-engine counters: ``batched_contractions`` is the number of
    lockstep ``einsum_batched`` calls issued by the multi-shot sampler (each
    replaces up to ``nshots`` serial einsums), ``uniform_fallbacks`` counts
    site draws whose truncated weight vanished and fell back to the uniform
    distribution, and ``strip_cache_hits`` / ``strip_cache_misses`` count
    observable terms served from (resp. forcing a build of) cached column
    environments of a row strip.

    The values live in a private per-environment
    :class:`~repro.telemetry.metrics.MetricsRegistry` (under ``env.*`` metric
    names), so per-object statistics stay independent while sharing the
    registry's snapshot/delta machinery; the attribute API (``stats.ctm_moves
    += 1``, ``stats.reset()``) is unchanged.
    """

    __slots__ = ("registry",)

    def __init__(self, **initial: int) -> None:
        self.registry = MetricsRegistry()
        for field in ENV_STAT_FIELDS:
            self.registry.counter(f"env.{field}")
        for field, value in initial.items():
            if field not in ENV_STAT_FIELDS:
                raise TypeError(f"EnvStats has no counter {field!r}")
            setattr(self, field, value)

    def reset(self) -> None:
        self.registry.reset()

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain ``{field: value}`` dict."""
        return {field: getattr(self, field) for field in ENV_STAT_FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnvStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EnvStats({inner})"


def _env_stat_property(field: str) -> property:
    key = f"env.{field}"

    def fget(self: EnvStats) -> int:
        return self.registry.value(key)

    def fset(self: EnvStats, value: int) -> None:
        self.registry.counter(key)._set(value)

    return property(fget, fset, doc=f"Counter {field!r} (registry-backed).")


for _field in ENV_STAT_FIELDS:
    setattr(EnvStats, _field, _env_stat_property(_field))
del _field


def local_terms(observable) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
    """Local terms as ``(sites, matrix)`` pairs for every supported operator type.

    Accepts an :class:`~repro.operators.observable.Observable`, a
    :class:`~repro.operators.hamiltonians.Hamiltonian`, or an explicit
    iterable of ``(sites, matrix)`` pairs.
    """
    from repro.operators.hamiltonians import Hamiltonian
    from repro.operators.observable import Observable

    if isinstance(observable, Observable):
        return observable.local_terms()
    if isinstance(observable, Hamiltonian):
        return [(term.sites, term.matrix) for term in observable.terms]
    if isinstance(observable, (list, tuple)):
        return [(tuple(sites), np.asarray(matrix)) for sites, matrix in observable]
    raise TypeError(f"unsupported observable type {type(observable)!r}")


class Environment(abc.ABC):
    """Protocol for cached contraction environments of one PEPS state."""

    #: the PEPS this environment belongs to
    peps = None
    #: work counters
    stats: EnvStats

    # ------------------------------------------------------------------ #
    # Cache lifecycle
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self) -> "Environment":
        """Eagerly compute every cached boundary (queries build lazily otherwise)."""

    @abc.abstractmethod
    def invalidate(self, rows: Optional[Iterable[int]] = None) -> None:
        """Mark the given lattice rows (default: all) as stale.

        Cached boundaries that absorbed a stale row are recomputed on the next
        query; everything else is reused.
        """

    def rescale_cached(self, factor: complex) -> None:
        """Account for an in-place scaling of *every* site tensor by ``factor``.

        The default implementation conservatively invalidates the whole cache;
        concrete environments rescale their cached boundaries analytically so
        that in-place normalization keeps the cache warm.
        """
        self.invalidate()

    @abc.abstractmethod
    def accepts(self, contract_option) -> bool:
        """Whether this environment implements the given contraction option."""

    # ------------------------------------------------------------------ #
    # Cached queries
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def norm_sq(self) -> complex:
        """``<psi|psi>`` from the cached boundaries."""

    def norm(self) -> float:
        """``sqrt(<psi|psi>)``."""
        return float(np.sqrt(max(float(np.real(self.norm_sq())), 0.0)))

    @abc.abstractmethod
    def expectation(self, observable, normalized: bool = True) -> float:
        """``<psi|O|psi>`` for a sum of local terms, sharing one boundary pair."""

    @abc.abstractmethod
    def measure_1site(
        self,
        operator,
        sites: Optional[Sequence[int]] = None,
        normalized: bool = True,
    ) -> Dict[int, Union[float, complex]]:
        """Batched ``<O_s>`` for every requested site in one cached pass.

        Values are normalized real floats; ``normalized=False`` returns the
        raw complex strip values.
        """

    @abc.abstractmethod
    def measure_2site(
        self,
        operator_a,
        operator_b=None,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        normalized: bool = True,
    ) -> Dict[Tuple[int, int], Union[float, complex]]:
        """Batched two-site expectation values over site pairs.

        Values are normalized real floats; ``normalized=False`` returns the
        raw complex strip values.
        """

    @abc.abstractmethod
    def sample(
        self,
        rng=None,
        nshots: int = 1,
        batch_shots: Optional[int] = None,
        sampler: str = "perfect",
        sampler_options: Optional[Dict] = None,
    ) -> np.ndarray:
        """Draw computational-basis samples ``~ |<b|psi>|^2 / <psi|psi>``.

        ``sampler`` selects the scheme: ``"perfect"`` (default) draws
        independent samples by exact conditional sampling, ``"mc"`` runs
        Metropolis chains (:mod:`repro.peps.envs.sampling_mc`);
        ``sampler_options`` passes scheme-specific keywords (e.g. the MC
        ``sweeps``).  ``batch_shots`` bounds how many shots the perfect
        sampler advances in lockstep per batched contraction (``None``: all
        of them, ``1``: the serial reference path).  The sampled bits are
        identical either way — only the contraction grouping changes.
        """
