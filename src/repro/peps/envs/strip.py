"""Strip contractions: one local term between cached boundary environments.

Given an upper boundary (rows ``0..r0-1`` absorbed) and a lower boundary
(rows ``r1+1..nrow-1`` absorbed), the value of ``<psi| H_term |psi>`` reduces
to contracting the short strip of rows ``r0..r1`` with the term's operator
inserted between the layers (Figure 6 of the paper).  This module hosts the
strip machinery shared by every boundary environment and the legacy
``expectation_value`` path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tensornetwork.network import contract_network

# --------------------------------------------------------------------- #
# Row-strip transfer contractions, shared by batched measurement and
# sampling.  Leg convention of the horizontal environment ``E``:
# ``(upper boundary bond, ket horizontal bond, bra horizontal bond, lower
# boundary bond)``.  Boundary tensors are ``(left, ket phys, bra phys,
# right)``; site tensors ``(phys, up, left, down, right)``.
# --------------------------------------------------------------------- #


def transfer_right(backend, upper, ket, bra, lower, right):
    """Absorb one traced column (phys legs contracted) into a right environment."""
    return backend.einsum(
        "auwx,puedg,pwfhs,bdhy,xgsy->aefb", upper, ket, bra, lower, right
    )


def transfer_left(backend, left, upper, ket, bra, lower):
    """Absorb one traced column into a left environment."""
    return backend.einsum(
        "aefb,auwx,puedg,pwfhs,bdhy->xgsy", left, upper, ket, bra, lower
    )


def transfer_left_projected(backend, left, upper, proj_ket, proj_bra, lower):
    """Absorb one basis-projected column (no phys legs) into a left environment."""
    return backend.einsum(
        "aefb,auwx,uedg,wfhs,bdhy->xgsy", left, upper, proj_ket, proj_bra, lower
    )


def site_density(backend, left, upper, ket, bra, lower, right):
    """Local reduced density matrix ``rho[bra phys, ket phys]`` of one column."""
    return backend.einsum(
        "aefb,auwx,puedg,qwfhs,bdhy,xgsy->qp", left, upper, ket, bra, lower, right
    )


def operator_pieces(
    sites: Sequence[int],
    matrix: np.ndarray,
    positions: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]]:
    """Split a term operator into per-site pieces with a shared internal bond.

    Every piece is a 4-mode array ``(kappa_in, out, in, kappa_out)``; for a
    single-site term the kappa legs have dimension 1, for a two-site term the
    operator Schmidt decomposition links the two pieces through a bond of
    dimension at most ``d^2``.

    Returns a mapping ``(row, col) -> list of (piece, kappa_in_label, kappa_out_label)``.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    pieces: Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]] = {}
    if len(sites) == 1:
        d = matrix.shape[0]
        piece = matrix.reshape(1, d, d, 1)
        pieces.setdefault(positions[0], []).append((piece, ("kap", id(matrix), 0), ("kap", id(matrix), 1)))
        return pieces
    if len(sites) == 2:
        d = int(np.sqrt(matrix.shape[0]))
        # G[i1 i2, j1 j2] -> G[i1, j1, i2, j2] -> matrix ((i1 j1), (i2 j2))
        tensor = matrix.reshape(d, d, d, d).transpose(0, 2, 1, 3)
        mat = tensor.reshape(d * d, d * d)
        u, s, vh = np.linalg.svd(mat, full_matrices=False)
        keep = int(np.count_nonzero(s > s[0] * 1e-14)) if s[0] > 0 else 1
        keep = max(keep, 1)
        root = np.sqrt(s[:keep])
        a = (u[:, :keep] * root).reshape(d, d, keep)          # (i1, j1, kappa)
        bpart = (root[:, None] * vh[:keep, :]).reshape(keep, d, d)  # (kappa, i2, j2)
        kap = ("kap", id(matrix), "bond")
        dangle_a = ("kap", id(matrix), "a")
        dangle_b = ("kap", id(matrix), "b")
        piece_a = a.reshape(d, d, keep)[np.newaxis, ...]       # (1, i1, j1, kappa)
        piece_b = bpart.reshape(keep, d, d)[..., np.newaxis]   # (kappa, i2, j2, 1)
        pieces.setdefault(positions[0], []).append((piece_a, dangle_a, kap))
        pieces.setdefault(positions[1], []).append((piece_b, kap, dangle_b))
        return pieces
    raise ValueError(f"terms on {len(sites)} sites are not supported")


def strip_value(
    peps,
    upper: Sequence,
    lower: Sequence,
    r0: int,
    r1: int,
    sites: Sequence[int],
    matrix: np.ndarray,
) -> complex:
    """Contract (upper env) x (rows r0..r1 with the term inserted) x (lower env).

    The strip is contracted column by column; the per-column contraction runs
    through :func:`contract_network`, so intermediate sizes stay bounded by
    ``(boundary bond)^2 x (PEPS bond)^(2*height)`` times small factors.
    """
    backend = peps.backend
    ncol = peps.ncol
    rows = list(range(r0, r1 + 1))
    positions = [peps.site_position(s) for s in sites]
    for (r, _c) in positions:
        if not (r0 <= r <= r1):
            raise ValueError("term site outside the strip rows")
    piece_map = operator_pieces(sites, matrix, positions)

    env = None
    env_labels: Tuple = ()
    pending: List = []  # kappa labels crossing column boundaries

    for j in range(ncol):
        operands = []
        inputs = []

        # Upper boundary tensor.
        operands.append(upper[j])
        inputs.append((("ub", j), ("uk", j), ("ubra", j), ("ub", j + 1)))

        # Lower boundary tensor.
        operands.append(lower[j])
        inputs.append((("lb", j), ("lk", j), ("lbra", j), ("lb", j + 1)))

        for r in rows:
            ket = peps.grid[r][j]
            bra = backend.conj(peps.grid[r][j])
            ket_up = ("uk", j) if r == r0 else ("vk", r, j)
            ket_down = ("lk", j) if r == r1 else ("vk", r + 1, j)
            bra_up = ("ubra", j) if r == r0 else ("vb", r, j)
            bra_down = ("lbra", j) if r == r1 else ("vb", r + 1, j)

            has_op = (r, j) in piece_map
            ket_phys = ("kp", r, j)
            bra_phys = ("bp", r, j) if has_op else ket_phys

            operands.append(ket)
            inputs.append((ket_phys, ket_up, ("hk", r, j), ket_down, ("hk", r, j + 1)))
            operands.append(bra)
            inputs.append((bra_phys, bra_up, ("hb", r, j), bra_down, ("hb", r, j + 1)))

            if has_op:
                for piece, kap_in, kap_out in piece_map[(r, j)]:
                    operands.append(backend.astensor(piece))
                    inputs.append((kap_in, bra_phys, ket_phys, kap_out))

        # Operator bonds whose two endpoints straddle this column boundary must
        # be carried in the environment until the second endpoint is reached.
        pending = pending_kappas(piece_map, j)

        if env is not None:
            operands.append(env)
            inputs.append(env_labels)

        out_labels = [("ub", j + 1)]
        for r in rows:
            out_labels.append(("hk", r, j + 1))
            out_labels.append(("hb", r, j + 1))
        out_labels.append(("lb", j + 1))
        out_labels.extend(pending)

        env = contract_network(operands, inputs, tuple(out_labels), backend=backend)
        env_labels = tuple(out_labels)

    return backend.item(env)


def pending_kappas(piece_map, col: int) -> List:
    """Operator-bond labels shared between a column <= col and a column > col."""
    ends: Dict = {}
    for (r, c), plist in piece_map.items():
        for piece, kap_in, kap_out in plist:
            for label in (kap_in, kap_out):
                ends.setdefault(label, []).append(c)
    pending = []
    for label, cols in ends.items():
        if len(cols) == 2 and min(cols) <= col < max(cols):
            pending.append(label)
    return pending
