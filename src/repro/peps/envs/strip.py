"""Strip contractions: one local term between cached boundary environments.

Given an upper boundary (rows ``0..r0-1`` absorbed) and a lower boundary
(rows ``r1+1..nrow-1`` absorbed), the value of ``<psi| H_term |psi>`` reduces
to contracting the short strip of rows ``r0..r1`` with the term's operator
inserted between the layers (Figure 6 of the paper).  This module hosts the
strip machinery shared by every boundary environment and the legacy
``expectation_value`` path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tensornetwork.network import contract_network

# --------------------------------------------------------------------- #
# Row-strip transfer contractions, shared by batched measurement and
# sampling.  Leg convention of the horizontal environment ``E``:
# ``(upper boundary bond, ket horizontal bond, bra horizontal bond, lower
# boundary bond)``.  Boundary tensors are ``(left, ket phys, bra phys,
# right)``; site tensors ``(phys, up, left, down, right)``.
# --------------------------------------------------------------------- #


def transfer_right(backend, upper, ket, bra, lower, right):
    """Absorb one traced column (phys legs contracted) into a right environment."""
    return backend.einsum(
        "auwx,puedg,pwfhs,bdhy,xgsy->aefb", upper, ket, bra, lower, right
    )


def transfer_left(backend, left, upper, ket, bra, lower):
    """Absorb one traced column into a left environment."""
    return backend.einsum(
        "aefb,auwx,puedg,pwfhs,bdhy->xgsy", left, upper, ket, bra, lower
    )


def transfer_left_projected(backend, left, upper, proj_ket, proj_bra, lower):
    """Absorb one basis-projected column (no phys legs) into a left environment."""
    return backend.einsum(
        "aefb,auwx,uedg,wfhs,bdhy->xgsy", left, upper, proj_ket, proj_bra, lower
    )


def site_density(backend, left, upper, ket, bra, lower, right):
    """Local reduced density matrix ``rho[bra phys, ket phys]`` of one column."""
    return backend.einsum(
        "aefb,auwx,puedg,qwfhs,bdhy,xgsy->qp", left, upper, ket, bra, lower, right
    )


def operator_pieces(
    sites: Sequence[int],
    matrix: np.ndarray,
    positions: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]]:
    """Split a term operator into per-site pieces with a shared internal bond.

    Every piece is a 4-mode array ``(kappa_in, out, in, kappa_out)``; for a
    single-site term the kappa legs have dimension 1, for a two-site term the
    operator Schmidt decomposition links the two pieces through a bond of
    dimension at most ``d^2``.

    Returns a mapping ``(row, col) -> list of (piece, kappa_in_label, kappa_out_label)``.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    pieces: Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]] = {}
    if len(sites) == 1:
        d = matrix.shape[0]
        piece = matrix.reshape(1, d, d, 1)
        pieces.setdefault(positions[0], []).append((piece, ("kap", id(matrix), 0), ("kap", id(matrix), 1)))
        return pieces
    if len(sites) == 2:
        d = int(np.sqrt(matrix.shape[0]))
        # G[i1 i2, j1 j2] -> G[i1, j1, i2, j2] -> matrix ((i1 j1), (i2 j2))
        tensor = matrix.reshape(d, d, d, d).transpose(0, 2, 1, 3)
        mat = tensor.reshape(d * d, d * d)
        u, s, vh = np.linalg.svd(mat, full_matrices=False)
        keep = int(np.count_nonzero(s > s[0] * 1e-14)) if s[0] > 0 else 1
        keep = max(keep, 1)
        root = np.sqrt(s[:keep])
        a = (u[:, :keep] * root).reshape(d, d, keep)          # (i1, j1, kappa)
        bpart = (root[:, None] * vh[:keep, :]).reshape(keep, d, d)  # (kappa, i2, j2)
        kap = ("kap", id(matrix), "bond")
        dangle_a = ("kap", id(matrix), "a")
        dangle_b = ("kap", id(matrix), "b")
        piece_a = a.reshape(d, d, keep)[np.newaxis, ...]       # (1, i1, j1, kappa)
        piece_b = bpart.reshape(keep, d, d)[..., np.newaxis]   # (kappa, i2, j2, 1)
        pieces.setdefault(positions[0], []).append((piece_a, dangle_a, kap))
        pieces.setdefault(positions[1], []).append((piece_b, kap, dangle_b))
        return pieces
    raise ValueError(f"terms on {len(sites)} sites are not supported")


class StripCache:
    """Shared column environments of one row strip, reused across terms.

    Every observable term on rows ``r0..r1`` contracts the *same* strip
    ``upper x rows x lower`` — the terms differ only in which columns carry
    operator pieces.  The cache lazily builds the traced (operator-free)
    left environments ``L[j]`` (columns ``0..j-1`` absorbed) and right
    environments ``R[j]`` (columns ``j..ncol-1`` absorbed) once, and each
    :meth:`term_value` then only contracts the term's own column span
    ``c0..c1`` between ``L[c0]`` and ``R[c1+1]``.

    A batched expectation pass holds one cache per ``(r0, r1)`` strip, so
    ``k`` terms on one strip cost one pair of transfer sweeps plus ``k``
    short span contractions instead of ``k`` full ``O(ncol)`` sweeps.
    ``hits`` counts the term evaluations fully served by already-built
    column environments, ``misses`` those that had to extend a sweep.
    """

    def __init__(self, peps, upper: Sequence, lower: Sequence, r0: int, r1: int) -> None:
        self.peps = peps
        self.backend = peps.backend
        self.upper = upper
        self.lower = lower
        self.r0 = r0
        self.r1 = r1
        self.rows = list(range(r0, r1 + 1))
        ncol = peps.ncol
        self._left: List = [None] * (ncol + 1)
        self._right: List = [None] * (ncol + 1)
        # Closes the dimension-1 edge legs at the right lattice boundary so
        # every R[j] exposes only the column-j labels.
        edge = self.backend.ones((1,) * len(self._column_labels(ncol)))
        self._right[ncol] = edge
        self._builds = 0
        self.hits = 0
        self.misses = 0

    def _column_labels(self, j: int) -> Tuple:
        labels: List = [("ub", j)]
        for r in self.rows:
            labels.append(("hk", r, j))
            labels.append(("hb", r, j))
        labels.append(("lb", j))
        return tuple(labels)

    def _column_operands(self, j: int, piece_map=None) -> Tuple[List, List]:
        """Operands and label tuples of strip column ``j``.

        ``piece_map`` inserts operator pieces between the layers; ``None``
        gives the traced column used by the shared environments.
        """
        backend = self.backend
        r0, r1 = self.r0, self.r1
        operands: List = [self.upper[j], self.lower[j]]
        inputs: List = [
            (("ub", j), ("uk", j), ("ubra", j), ("ub", j + 1)),
            (("lb", j), ("lk", j), ("lbra", j), ("lb", j + 1)),
        ]
        for r in self.rows:
            ket = self.peps.grid[r][j]
            bra = backend.conj(self.peps.grid[r][j])
            ket_up = ("uk", j) if r == r0 else ("vk", r, j)
            ket_down = ("lk", j) if r == r1 else ("vk", r + 1, j)
            bra_up = ("ubra", j) if r == r0 else ("vb", r, j)
            bra_down = ("lbra", j) if r == r1 else ("vb", r + 1, j)

            has_op = piece_map is not None and (r, j) in piece_map
            ket_phys = ("kp", r, j)
            bra_phys = ("bp", r, j) if has_op else ket_phys

            operands.append(ket)
            inputs.append((ket_phys, ket_up, ("hk", r, j), ket_down, ("hk", r, j + 1)))
            operands.append(bra)
            inputs.append((bra_phys, bra_up, ("hb", r, j), bra_down, ("hb", r, j + 1)))

            if has_op:
                for piece, kap_in, kap_out in piece_map[(r, j)]:
                    operands.append(backend.astensor(piece))
                    inputs.append((kap_in, bra_phys, ket_phys, kap_out))
        return operands, inputs

    def left(self, j: int):
        """Traced environment of columns ``0..j-1`` (``None`` for ``j == 0``)."""
        if j == 0:
            return None
        if self._left[j] is None:
            prev = self.left(j - 1)
            operands, inputs = self._column_operands(j - 1)
            if prev is not None:
                operands.append(prev)
                inputs.append(self._column_labels(j - 1))
            self._left[j] = contract_network(
                operands, inputs, self._column_labels(j), backend=self.backend
            )
            self._builds += 1
        return self._left[j]

    def right(self, j: int):
        """Traced environment of columns ``j..ncol-1`` (edge closer at ``ncol``)."""
        if self._right[j] is None:
            operands, inputs = self._column_operands(j)
            operands.append(self.right(j + 1))
            inputs.append(self._column_labels(j + 1))
            self._right[j] = contract_network(
                operands, inputs, self._column_labels(j), backend=self.backend
            )
            self._builds += 1
        return self._right[j]

    def term_value(self, sites: Sequence[int], matrix: np.ndarray) -> complex:
        """``<psi| term |psi>`` with only the term's column span contracted."""
        backend = self.backend
        positions = [self.peps.site_position(s) for s in sites]
        for (r, _c) in positions:
            if not (self.r0 <= r <= self.r1):
                raise ValueError("term site outside the strip rows")
        piece_map = operator_pieces(sites, matrix, positions)
        cols = [c for (_r, c) in positions]
        c0, c1 = min(cols), max(cols)

        builds_before = self._builds
        env = self.left(c0)
        env_labels = self._column_labels(c0)
        for j in range(c0, c1 + 1):
            operands, inputs = self._column_operands(j, piece_map)
            if env is not None:
                operands.append(env)
                inputs.append(env_labels)
            out_labels = self._column_labels(j + 1) + tuple(pending_kappas(piece_map, j))
            env = contract_network(operands, inputs, out_labels, backend=backend)
            env_labels = out_labels

        closed = contract_network(
            [env, self.right(c1 + 1)],
            [env_labels, self._column_labels(c1 + 1)],
            (),
            backend=backend,
        )
        if self._builds == builds_before:
            self.hits += 1
        else:
            self.misses += 1
        return backend.item(closed)


def strip_value(
    peps,
    upper: Sequence,
    lower: Sequence,
    r0: int,
    r1: int,
    sites: Sequence[int],
    matrix: np.ndarray,
) -> complex:
    """Contract (upper env) x (rows r0..r1 with the term inserted) x (lower env).

    The strip is contracted column by column; the per-column contraction runs
    through :func:`contract_network`, so intermediate sizes stay bounded by
    ``(boundary bond)^2 x (PEPS bond)^(2*height)`` times small factors.
    Callers with several terms on the same strip should hold a
    :class:`StripCache` instead — this convenience wrapper builds a fresh one
    per call and shares nothing.
    """
    cache = StripCache(peps, upper, lower, r0, r1)
    return cache.term_value(sites, matrix)


def pending_kappas(piece_map, col: int) -> List:
    """Operator-bond labels shared between a column <= col and a column > col."""
    ends: Dict = {}
    for (r, c), plist in piece_map.items():
        for piece, kap_in, kap_out in plist:
            for label in (kap_in, kap_out):
                ends.setdefault(label, []).append(c)
    pending = []
    for label, cols in ends.items():
        if len(cols) == 2 and min(cols) <= col < max(cols):
            pending.append(label)
    return pending
