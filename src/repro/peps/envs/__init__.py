"""Pluggable PEPS environment subsystem.

An environment owns the cached boundary contraction state of one PEPS and
serves every quantity that benefits from it — norms, multi-term expectation
values, batched single/two-site measurements, and basis-state sampling —
with incremental dirty-row invalidation so that local updates only recompute
the touched sweep segments::

    from repro import peps
    from repro.peps import BMPS
    from repro.peps.envs import EnvBoundaryMPS
    from repro.tensornetwork import ImplicitRandomizedSVD

    state = peps.random_peps(4, 4, bond_dim=2, seed=0)
    env = state.attach_environment(BMPS(ImplicitRandomizedSVD(rank=8, seed=0)))
    energy = env.expectation(H)            # builds the boundary caches
    state.apply_operator(CX, [1, 5])       # marks only rows 0-1 dirty
    energy = env.expectation(H)            # recomputes just the dirty segments
    magnetization = env.measure_1site(Z)   # all sites, one cached pass
    shots = env.sample(rng=0, nshots=100)  # basis-state samples

Three implementations share the protocol: :class:`EnvExact` (untruncated),
:class:`EnvBoundaryMPS` (zip-up/IBMPS truncation) and :class:`EnvCTM`
(corner-transfer-matrix renormalization with corner-Gram projectors,
selected by a :class:`~repro.peps.contraction.options.CTMOption`).
"""

from repro.peps.envs.base import Environment, EnvStats, local_terms
from repro.peps.envs.boundary import BoundaryEnvironment, option_signature
from repro.peps.envs.boundary_mps import EnvBoundaryMPS, make_environment
from repro.peps.envs.ctm import EnvCTM, corner_grams, ctm_renormalize
from repro.peps.envs.exact import EnvExact
from repro.peps.envs.sampling import sample_bitstrings
from repro.peps.envs.strip import StripCache, operator_pieces, strip_value

__all__ = [
    "Environment",
    "EnvStats",
    "BoundaryEnvironment",
    "EnvExact",
    "EnvBoundaryMPS",
    "EnvCTM",
    "make_environment",
    "option_signature",
    "local_terms",
    "sample_bitstrings",
    "StripCache",
    "operator_pieces",
    "strip_value",
    "corner_grams",
    "ctm_renormalize",
]
