"""PEPS operator-application (evolution) algorithms.

Applying a two-site operator to neighbouring PEPS sites requires contracting
the operator with the two site tensors and refactorizing the result with a
truncated bond (Eq. 4 of the paper).  Several algorithms are provided,
selected by option objects in the Koala style:

* :class:`DirectUpdate` — contract everything and ``einsumsvd`` the
  ``d^2 r^6``-sized merged tensor directly (cost ``O(d^3 r^9)``).
* :class:`QRUpdate` — Algorithm 1: QR both site tensors first so the
  ``einsumsvd`` only involves the small R factors (cost ``O(d^2 r^5)``).
* :class:`LocalGramQRUpdate` — QR-SVD where the orthogonalizations use the
  reshape-avoiding Gram-matrix method (Algorithm 5); this is the
  ``local-gram-qr`` variant benchmarked in Fig. 7b.
* :class:`LocalGramQRSVDUpdate` — additionally performs the small
  ``einsumsvd`` on the R factors in process-local memory
  (``local-gram-qr-svd`` in Fig. 7b).

Site tensors use the index order ``(phys, up, left, down, right)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.backends.interface import Backend
from repro.backends.numpy_backend import NumPyBackend
from repro.lattice import Bond
from repro.linalg.orthogonalize import tensor_qr
from repro.tensornetwork.einsumsvd import (
    EinsumSVDOption,
    ExplicitSVD,
    einsumsvd,
)

#: Index positions within a PEPS site tensor.
PHYS, UP, LEFT, DOWN, RIGHT = 0, 1, 2, 3, 4


def _resolve_orientation(orientation: Union[str, Bond]) -> str:
    """Resolve the pair orientation from a :class:`Bond` or orientation string.

    A bond must join adjacent sites (``"horizontal"`` or ``"vertical"``);
    next-nearest-neighbor bonds have no shared PEPS bond to update through.
    """
    if isinstance(orientation, Bond):
        if not orientation.is_adjacent:
            raise ValueError(
                f"cannot apply a two-site update through a {orientation.orientation!r} "
                f"bond: sites {orientation.site_a.position} and "
                f"{orientation.site_b.position} do not share a PEPS bond"
            )
        return orientation.orientation
    if orientation not in ("horizontal", "vertical"):
        raise ValueError(f"unknown orientation {orientation!r}")
    return orientation


@dataclass
class UpdateOption:
    """Base class for two-site update options.

    Attributes
    ----------
    rank:
        Maximum bond dimension kept on the updated bond (``None`` = exact).
    cutoff:
        Optional relative singular-value cutoff.
    svd_option:
        The ``einsumsvd`` option used for the refactorization (explicit SVD
        by default; an :class:`ImplicitRandomizedSVD` may be supplied).
    """

    rank: Optional[int] = None
    cutoff: Optional[float] = None
    svd_option: Optional[EinsumSVDOption] = None

    def resolved_svd_option(self) -> EinsumSVDOption:
        option = self.svd_option if self.svd_option is not None else ExplicitSVD()
        option = option.with_rank(self.rank if self.rank is not None else option.rank)
        if self.cutoff is not None:
            import copy

            option = copy.copy(option)
            option.cutoff = self.cutoff
        return option


@dataclass
class DirectUpdate(UpdateOption):
    """Contract operator and both sites, then ``einsumsvd`` the merged tensor."""


@dataclass
class QRUpdate(UpdateOption):
    """Algorithm 1 (QR-SVD): reduce both sites by QR before the refactorization."""

    #: Orthogonalization method for the QRs: "qr" (matricize+QR) or "gram"
    #: (Algorithm 5).  "auto" matches the backend.
    qr_method: str = "qr"


@dataclass
class LocalGramQRUpdate(QRUpdate):
    """QR-SVD with reshape-avoiding Gram-matrix orthogonalization (ctf-local-gram-qr)."""

    qr_method: str = "gram"


@dataclass
class LocalGramQRSVDUpdate(QRUpdate):
    """Gram-matrix QR plus a process-local einsumsvd of the small R factors
    (ctf-local-gram-qr-svd)."""

    qr_method: str = "gram"
    local_einsumsvd: bool = True


def apply_single_site_operator(backend: Backend, site, operator):
    """Apply a one-site operator: Eq. (3) of the paper."""
    op = backend.astensor(operator)
    if len(backend.shape(op)) != 2:
        raise ValueError(
            f"single-site operator must be a matrix, got shape {backend.shape(op)}"
        )
    return backend.einsum("ij,juldr->iuldr", op, site)


def apply_two_site_operator(
    backend: Backend,
    site_a,
    site_b,
    operator,
    orientation: Union[str, Bond],
    option: Optional[UpdateOption] = None,
) -> Tuple[object, object]:
    """Apply a two-site operator to neighbouring sites A and B.

    Parameters
    ----------
    backend:
        Tensor backend.
    site_a, site_b:
        Site tensors with index order ``(phys, up, left, down, right)``.
        For ``orientation="horizontal"``, A is the left site; for
        ``"vertical"``, A is the upper site.
    operator:
        4x4 matrix or ``(2, 2, 2, 2)`` tensor ``G[i1, i2, j1, j2]`` with
        outputs before inputs; the first output/input pair belongs to A.
    orientation:
        ``"horizontal"`` or ``"vertical"``, or a :class:`repro.lattice.Bond`
        whose reference site is A (adjacent bonds only).
    option:
        The update algorithm option; defaults to :class:`QRUpdate`.

    Returns
    -------
    (new_site_a, new_site_b)
    """
    option = option if option is not None else QRUpdate()
    orientation = _resolve_orientation(orientation)
    gate = _as_gate_tensor(backend, operator, backend.shape(site_a)[PHYS],
                           backend.shape(site_b)[PHYS])

    if isinstance(option, QRUpdate):
        return _qr_svd_update(backend, site_a, site_b, gate, orientation, option)
    return _direct_update(backend, site_a, site_b, gate, orientation, option)


def _as_gate_tensor(backend: Backend, operator, d_a: int, d_b: int):
    """Normalize a two-site operator to a 4-mode tensor G[i1, i2, j1, j2]."""
    op = backend.astensor(operator)
    shape = backend.shape(op)
    if len(shape) == 2:
        if shape != (d_a * d_b, d_a * d_b):
            raise ValueError(
                f"two-site operator matrix must be {(d_a * d_b, d_a * d_b)}, got {shape}"
            )
        return backend.reshape(op, (d_a, d_b, d_a, d_b))
    if len(shape) == 4:
        if shape != (d_a, d_b, d_a, d_b):
            raise ValueError(
                f"two-site operator tensor must be {(d_a, d_b, d_a, d_b)}, got {shape}"
            )
        return op
    raise ValueError(f"two-site operator must have 2 or 4 modes, got {len(shape)}")


# --------------------------------------------------------------------- #
# Index bookkeeping
#
# The einsumsvd specs below are written for the horizontal orientation; the
# vertical case is obtained by swapping the roles of (up, down) and
# (left, right) legs of both sites, which is a pure transposition.
# --------------------------------------------------------------------- #
_SWAP_UD_LR = (PHYS, LEFT, UP, RIGHT, DOWN)  # exchanges up<->left, down<->right


def _to_horizontal(backend: Backend, tensor, orientation: str):
    if orientation == "horizontal":
        return tensor
    return backend.transpose(tensor, _SWAP_UD_LR)


def _from_horizontal(backend: Backend, tensor, orientation: str):
    if orientation == "horizontal":
        return tensor
    return backend.transpose(tensor, _SWAP_UD_LR)


def _direct_update(backend, site_a, site_b, gate, orientation, option):
    """Merge operator and both sites, refactorize in one einsumsvd."""
    a = _to_horizontal(backend, site_a, orientation)
    b = _to_horizontal(backend, site_b, orientation)
    svd_option = option.resolved_svd_option()
    # a: (j1,u,l,d,k)  b: (j2,v,k,w,r)  gate: (i1,i2,j1,j2)
    new_a, new_b = einsumsvd(
        "xyjg,juldk,gvkwr->xuldz,yvzwr",
        gate,
        a,
        b,
        option=svd_option,
        backend=backend,
        rank=option.rank,
    )
    return (
        _from_horizontal(backend, new_a, orientation),
        _from_horizontal(backend, new_b, orientation),
    )


def _qr_svd_update(backend, site_a, site_b, gate, orientation, option):
    """Algorithm 1: QR both sites, einsumsvd the R factors, recombine."""
    a = _to_horizontal(backend, site_a, orientation)
    b = _to_horizontal(backend, site_b, orientation)
    qr_method = option.qr_method

    # Step (1)->(2): QR with the physical leg and the shared bond grouped
    # into the columns.  A: rows (u,l,d), cols (phys, right-bond);
    # B: rows (v,w,r), cols (phys, left-bond).
    a_perm = backend.transpose(a, (UP, LEFT, DOWN, PHYS, RIGHT))      # (u,l,d,j1,k)
    b_perm = backend.transpose(b, (UP, DOWN, RIGHT, PHYS, LEFT))      # (v,w,r,j2,k)
    q_a, r_a = tensor_qr(backend, a_perm, 3, method=qr_method)        # q_a: (u,l,d,s) r_a: (s,j1,k)
    q_b, r_b = tensor_qr(backend, b_perm, 3, method=qr_method)        # q_b: (v,w,r,t) r_b: (t,j2,k)

    # Step (2)->(4): einsumsvd of {gate, R_A, R_B} over the old bond k.
    svd_option = option.resolved_svd_option()
    local = bool(getattr(option, "local_einsumsvd", False))
    if local and backend.name != "numpy":
        # The gate and R factors are small; move them to local memory, do the
        # refactorization sequentially, then return to distributed memory.
        local_backend = NumPyBackend()
        gate_l = backend.to_local(gate)
        ra_l = backend.to_local(r_a)
        rb_l = backend.to_local(r_b)
        new_ra_l, new_rb_l = einsumsvd(
            "xyjg,sjk,tgk->sxz,zty",
            local_backend.astensor(gate_l),
            local_backend.astensor(ra_l),
            local_backend.astensor(rb_l),
            option=svd_option,
            backend=local_backend,
            rank=option.rank,
        )
        new_r_a = backend.from_local(local_backend.asarray(new_ra_l))
        new_r_b = backend.from_local(local_backend.asarray(new_rb_l))
    else:
        new_r_a, new_r_b = einsumsvd(
            "xyjg,sjk,tgk->sxz,zty",
            gate,
            r_a,
            r_b,
            option=svd_option,
            backend=backend,
            rank=option.rank,
        )

    # Step (4)->(5): recombine with the isometries.
    new_a = backend.einsum("ulds,sxz->xuldz", q_a, new_r_a)
    new_b = backend.einsum("vwrt,zty->yvzwr", q_b, new_r_b)
    return (
        _from_horizontal(backend, new_a, orientation),
        _from_horizontal(backend, new_b, orientation),
    )
