"""Projected entangled pair states (PEPS) on an ``nrow x ncol`` lattice.

A :class:`PEPS` stores one backend tensor per lattice site with index order
``(phys, up, left, down, right)``; legs pointing outside the lattice have
dimension 1.  Sites are addressed either by ``(row, col)`` pairs or by flat
row-major indices (the convention the paper's code listing uses, e.g.
``qstate.apply_operator(CX, [1, 4])`` on a 2x3 lattice acts on the two
vertically adjacent sites of column 1).

The class provides the primitives of the Koala library: operator application
with selectable update algorithms, amplitudes, norms, inner products,
expectation values with optional intermediate caching, and circuit
application.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import get_backend
from repro.backends.interface import Backend
from repro.circuits.circuit import Circuit, Gate
from repro.lattice import bond_between
from repro.operators.hamiltonians import Hamiltonian
from repro.operators.observable import Observable
from repro.peps.contraction.options import (
    BMPS,
    ContractOption,
    CTMOption,
    Exact,
    TwoLayerBMPS,
)
from repro.peps.contraction.single_layer import contract_single_layer
from repro.peps.contraction.two_layer import (
    contract_inner_fused,
    contract_inner_two_layer,
)
from repro.peps.update import (
    PHYS,
    UP,
    LEFT,
    DOWN,
    RIGHT,
    QRUpdate,
    UpdateOption,
    apply_single_site_operator,
    apply_two_site_operator,
)
from repro.tensornetwork.network import contract_network
from repro.utils.rng import SeedLike, ensure_rng


class PEPS:
    """A PEPS quantum state on a 2D square lattice."""

    def __init__(
        self,
        grid: Sequence[Sequence],
        backend: Union[str, Backend, None] = "numpy",
    ) -> None:
        self.backend = get_backend(backend)
        self.grid: List[List] = [list(row) for row in grid]
        self.nrow = len(self.grid)
        if self.nrow == 0:
            raise ValueError("a PEPS needs at least one row")
        self.ncol = len(self.grid[0])
        for i, row in enumerate(self.grid):
            if len(row) != self.ncol:
                raise ValueError(
                    f"row {i} has {len(row)} columns, expected {self.ncol}"
                )
        self._env = None
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation and indexing
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        b = self.backend
        for i in range(self.nrow):
            for j in range(self.ncol):
                shape = b.shape(self.grid[i][j])
                if len(shape) != 5:
                    raise ValueError(
                        f"site ({i}, {j}) must have 5 modes (phys, up, left, down, right), "
                        f"got shape {shape}"
                    )
                if i == 0 and shape[UP] != 1:
                    raise ValueError(f"site ({i}, {j}) top edge leg must have dimension 1")
                if i == self.nrow - 1 and shape[DOWN] != 1:
                    raise ValueError(f"site ({i}, {j}) bottom edge leg must have dimension 1")
                if j == 0 and shape[LEFT] != 1:
                    raise ValueError(f"site ({i}, {j}) left edge leg must have dimension 1")
                if j == self.ncol - 1 and shape[RIGHT] != 1:
                    raise ValueError(f"site ({i}, {j}) right edge leg must have dimension 1")
                if i + 1 < self.nrow:
                    below = b.shape(self.grid[i + 1][j])
                    if shape[DOWN] != below[UP]:
                        raise ValueError(
                            f"vertical bond mismatch between ({i}, {j}) and ({i + 1}, {j}): "
                            f"{shape[DOWN]} vs {below[UP]}"
                        )
                if j + 1 < self.ncol:
                    right = b.shape(self.grid[i][j + 1])
                    if shape[RIGHT] != right[LEFT]:
                        raise ValueError(
                            f"horizontal bond mismatch between ({i}, {j}) and ({i}, {j + 1}): "
                            f"{shape[RIGHT]} vs {right[LEFT]}"
                        )

    @property
    def n_sites(self) -> int:
        return self.nrow * self.ncol

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrow, self.ncol)

    def site_position(self, site: int) -> Tuple[int, int]:
        """Convert a flat row-major site index into ``(row, col)``."""
        if not (0 <= site < self.n_sites):
            raise ValueError(f"site {site} outside a {self.nrow}x{self.ncol} lattice")
        return divmod(int(site), self.ncol)

    def site_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.nrow and 0 <= col < self.ncol):
            raise ValueError(f"({row}, {col}) outside a {self.nrow}x{self.ncol} lattice")
        return row * self.ncol + col

    def __getitem__(self, position: Tuple[int, int]):
        row, col = position
        return self.grid[row][col]

    def __setitem__(self, position: Tuple[int, int], tensor) -> None:
        row, col = position
        self.grid[row][col] = tensor
        self._notify_env([row])

    # ------------------------------------------------------------------ #
    # Environments
    # ------------------------------------------------------------------ #
    def attach_environment(self, contract_option=None, env=None):
        """Attach a cached contraction environment and return it.

        The environment serves ``norm``/``expectation`` queries from cached
        boundary sweeps and is invalidated incrementally (only the touched
        rows) by the operator-application paths.  Either pass a
        ``contract_option`` (``None``/``Exact`` for an exact environment, a
        ``BMPS`` option for a truncated boundary MPS, a ``CTMOption`` for a
        corner-transfer-matrix environment) or a prebuilt
        :class:`~repro.peps.envs.base.Environment` for this state.
        """
        from repro.peps.envs import make_environment

        if env is None:
            env = make_environment(self, contract_option)
        elif env.peps is not self:
            raise ValueError("the environment belongs to a different PEPS")
        self._env = env
        return env

    def detach_environment(self):
        """Detach and return the attached environment (or ``None``)."""
        env, self._env = self._env, None
        return env

    @property
    def environment(self):
        """The attached environment, or ``None``."""
        return self._env

    def _notify_env(self, rows: Sequence[int]) -> None:
        if self._env is not None:
            self._env.invalidate(rows)

    def physical_dimensions(self) -> List[List[int]]:
        return [[self.backend.shape(t)[PHYS] for t in row] for row in self.grid]

    def bond_dimensions(self) -> List[int]:
        """All internal (horizontal and vertical) bond dimensions."""
        b = self.backend
        bonds = []
        for i in range(self.nrow):
            for j in range(self.ncol):
                shape = b.shape(self.grid[i][j])
                if j + 1 < self.ncol:
                    bonds.append(shape[RIGHT])
                if i + 1 < self.nrow:
                    bonds.append(shape[DOWN])
        return bonds

    def max_bond_dimension(self) -> int:
        bonds = self.bond_dimensions()
        return max(bonds) if bonds else 1

    def copy(self) -> "PEPS":
        """An independent deep copy: every site tensor is duplicated.

        Mutating the copy (operator application, in-place normalization)
        never touches the original's tensors — checkpointing and the
        algorithm drivers rely on this.  Any attached environment is *not*
        carried over (it caches contractions of the original's tensors);
        re-attach one on the copy if needed.
        """
        b = self.backend
        return PEPS([[b.copy(t) for t in row] for row in self.grid], b)

    def __copy__(self) -> "PEPS":
        # A shallow copy sharing the grid lists would let in-place updates on
        # one state corrupt the other; always deep-copy the tensors.
        return self.copy()

    def __deepcopy__(self, memo) -> "PEPS":
        return self.copy()

    def scale(self, factor: complex) -> "PEPS":
        """Multiply the state by a scalar (applied to a single site tensor)."""
        out = self.copy()
        out.grid[0][0] = out.grid[0][0] * factor
        return out

    # ------------------------------------------------------------------ #
    # Operator application
    # ------------------------------------------------------------------ #
    def apply_operator(
        self,
        operator,
        sites: Sequence[int],
        update_option: Optional[UpdateOption] = None,
    ) -> "PEPS":
        """Apply a one- or two-site operator (in place) and return ``self``.

        ``operator`` is a ``2^k x 2^k`` matrix (or the corresponding
        ``(2,)*2k`` tensor for ``k = 2``); ``sites`` are flat row-major site
        indices, the first being the operator's most significant qubit.
        Two-site operators on non-adjacent sites are routed with SWAP chains.
        """
        sites = [int(s) for s in sites]
        if len(sites) == 1:
            row, col = self.site_position(sites[0])
            self.grid[row][col] = apply_single_site_operator(
                self.backend, self.grid[row][col], operator
            )
            self._notify_env([row])
            return self
        if len(sites) == 2:
            return self._apply_two_site(operator, sites[0], sites[1], update_option)
        raise ValueError(f"only 1- and 2-site operators are supported, got {len(sites)} sites")

    def apply_gate(self, gate: Gate, update_option: Optional[UpdateOption] = None) -> "PEPS":
        return self.apply_operator(gate.matrix, gate.qubits, update_option)

    def apply_circuit(
        self, circuit: Circuit, update_option: Optional[UpdateOption] = None
    ) -> "PEPS":
        if circuit.n_qubits != self.n_sites:
            raise ValueError(
                f"circuit acts on {circuit.n_qubits} qubits, the PEPS has {self.n_sites} sites"
            )
        for gate in circuit.gates:
            self.apply_gate(gate, update_option)
        return self

    def _apply_two_site(
        self,
        operator,
        site_a: int,
        site_b: int,
        update_option: Optional[UpdateOption],
    ) -> "PEPS":
        if site_a == site_b:
            raise ValueError("a two-site operator needs two distinct sites")
        (ra, ca), (rb, cb) = self.site_position(site_a), self.site_position(site_b)
        if abs(ra - rb) + abs(ca - cb) == 1:
            self._apply_adjacent(operator, (ra, ca), (rb, cb), update_option)
            return self
        # Non-adjacent: swap the first operand's qubit along a lattice path
        # until it neighbours the second, apply, then undo the swaps.
        path = self._lattice_path((ra, ca), (rb, cb))
        swaps = list(zip(path[:-2], path[1:-1]))
        swap_matrix = _swap_matrix()
        for a, b in swaps:
            self._apply_adjacent(swap_matrix, a, b, update_option)
        self._apply_adjacent(operator, path[-2], (rb, cb), update_option)
        for a, b in reversed(swaps):
            self._apply_adjacent(swap_matrix, a, b, update_option)
        return self

    def _lattice_path(
        self, start: Tuple[int, int], end: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        """A monotone lattice path from ``start`` to ``end`` (rows first)."""
        path = [start]
        r, c = start
        while r != end[0]:
            r += 1 if end[0] > r else -1
            path.append((r, c))
        while c != end[1]:
            c += 1 if end[1] > c else -1
            path.append((r, c))
        return path

    def _apply_adjacent(
        self,
        operator,
        pos_a: Tuple[int, int],
        pos_b: Tuple[int, int],
        update_option: Optional[UpdateOption],
    ) -> None:
        b = self.backend
        bond, swapped = bond_between(pos_a, pos_b)
        gate = _swap_gate_qubits(b, operator) if swapped else operator
        first, second = bond.site_a.position, bond.site_b.position
        new_a, new_b = apply_two_site_operator(
            b,
            self.grid[first[0]][first[1]],
            self.grid[second[0]][second[1]],
            gate,
            bond,
            option=update_option if update_option is not None else QRUpdate(),
        )
        self.grid[first[0]][first[1]] = new_a
        self.grid[second[0]][second[1]] = new_b
        self._notify_env({first[0], second[0]})

    # ------------------------------------------------------------------ #
    # Contractions
    # ------------------------------------------------------------------ #
    def amplitude(
        self,
        bits: Sequence[int],
        contract_option: Optional[ContractOption] = None,
    ) -> complex:
        """The amplitude ``<bits|psi>`` (one-layer contraction).

        ``bits`` is a flat row-major sequence of computational-basis values.
        """
        if len(bits) != self.n_sites:
            raise ValueError(f"expected {self.n_sites} bits, got {len(bits)}")
        b = self.backend
        grid = []
        for i in range(self.nrow):
            row = []
            for j in range(self.ncol):
                tensor = self.grid[i][j]
                d = b.shape(tensor)[PHYS]
                value = int(bits[i * self.ncol + j])
                if not (0 <= value < d):
                    raise ValueError(f"basis value {value} outside physical dimension {d}")
                selector = np.zeros(d, dtype=np.complex128)
                selector[value] = 1.0
                projected = b.einsum("puldr,p->uldr", tensor, b.astensor(selector))
                row.append(projected)
            grid.append(row)
        option = contract_option if contract_option is not None else Exact()
        if isinstance(option, TwoLayerBMPS):
            # A projected PEPS has a single layer; fall back to the
            # corresponding single-layer algorithm.
            option = BMPS(option.svd_option, option.truncate_bond)
        return contract_single_layer(grid, option=option, backend=b)

    def inner(
        self,
        other: "PEPS",
        contract_option: Optional[ContractOption] = None,
    ) -> complex:
        """The inner product ``<self|other>`` (two-layer contraction).

        ``<self|self>`` with no explicit option is served from the attached
        environment's cached boundaries; an explicit ``contract_option``
        always selects the corresponding direct contraction algorithm.
        """
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if other is self and self._env is not None and contract_option is None:
            return self._env.norm_sq()
        option = contract_option if contract_option is not None else TwoLayerBMPS()
        if isinstance(option, CTMOption):
            # CTM is an environment scheme of the <psi|psi> sandwich; serve
            # the self inner product from a (possibly ephemeral) environment.
            if other is not self:
                raise TypeError(
                    "CTM contraction only serves <psi|psi> inner products; "
                    "use a BMPS/Exact option for cross overlaps"
                )
            return self._environment_for(option).norm_sq()
        if isinstance(option, TwoLayerBMPS):
            return contract_inner_two_layer(self.grid, other.grid, option, self.backend)
        return contract_inner_fused(self.grid, other.grid, option, self.backend)

    def norm(self, contract_option: Optional[ContractOption] = None) -> float:
        """``sqrt(<psi|psi>)``.

        With no explicit option and an attached environment, the norm comes
        from the environment's incrementally maintained boundaries; an
        explicit ``contract_option`` always runs that direct contraction.
        """
        if self._env is not None and contract_option is None:
            return self._env.norm()
        value = self.inner(self, contract_option)
        return float(np.sqrt(max(float(np.real(value)), 0.0)))

    def normalize(self, contract_option: Optional[ContractOption] = None) -> "PEPS":
        """Return a copy scaled to unit norm (scale spread over all sites)."""
        nrm = self.norm(contract_option)
        if nrm <= 0:
            raise ValueError("cannot normalize a state with zero norm")
        factor = nrm ** (-1.0 / self.n_sites)
        out = self.copy()
        for i in range(self.nrow):
            for j in range(self.ncol):
                out.grid[i][j] = out.grid[i][j] * factor
        return out

    def normalize_(self, contract_option: Optional[ContractOption] = None) -> "PEPS":
        """Normalize in place, keeping any attached environment's caches warm.

        The uniform per-site scale factor rescales the cached boundary
        environments analytically instead of invalidating them, so a hot-loop
        ``normalize_(); expectation(...)`` pair shares one boundary build.
        """
        nrm = self.norm(contract_option)
        if nrm <= 0:
            raise ValueError("cannot normalize a state with zero norm")
        factor = nrm ** (-1.0 / self.n_sites)
        for i in range(self.nrow):
            for j in range(self.ncol):
                self.grid[i][j] = self.grid[i][j] * factor
        if self._env is not None:
            self._env.rescale_cached(factor)
        return self

    def expectation(
        self,
        observable: Union[Observable, Hamiltonian],
        use_cache: bool = True,
        contract_option: Optional[ContractOption] = None,
        normalized: bool = True,
    ) -> float:
        """Expectation value ``<psi|O|psi>`` (optionally divided by ``<psi|psi>``).

        ``use_cache=True`` enables the intermediate caching strategy of
        Section IV-B: boundary environments of the ``<psi|psi>`` sandwich are
        computed once and shared across all local terms.  When an environment
        is attached (:meth:`attach_environment`) and compatible with
        ``contract_option``, its incrementally maintained boundaries are
        reused instead of rebuilding from scratch.
        """
        from repro.peps.measure import expectation_value

        if use_cache and self._env is not None and self._env.accepts(contract_option):
            return self._env.expectation(observable, normalized=normalized)
        return expectation_value(
            self,
            observable,
            use_cache=use_cache,
            contract_option=contract_option,
            normalized=normalized,
        )

    def measure_1site(
        self,
        operator,
        sites: Optional[Sequence[int]] = None,
        contract_option: Optional[ContractOption] = None,
        normalized: bool = True,
    ):
        """Batched single-site expectation values (see ``Environment.measure_1site``)."""
        return self._environment_for(contract_option).measure_1site(
            operator, sites=sites, normalized=normalized
        )

    def measure_2site(
        self,
        operator_a,
        operator_b=None,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        contract_option: Optional[ContractOption] = None,
        normalized: bool = True,
    ):
        """Batched two-site expectation values (see ``Environment.measure_2site``)."""
        return self._environment_for(contract_option).measure_2site(
            operator_a, operator_b, pairs=pairs, normalized=normalized
        )

    def sample(
        self,
        rng: SeedLike = None,
        nshots: int = 1,
        contract_option: Optional[ContractOption] = None,
        batch_shots: Optional[int] = None,
        sampler: str = "perfect",
        sampler_options: Optional[dict] = None,
    ) -> np.ndarray:
        """Computational-basis samples ``~ |<b|psi>|^2`` (see ``Environment.sample``).

        ``sampler`` selects the scheme (``"perfect"`` conditional sampling or
        ``"mc"`` Metropolis chains, with ``sampler_options`` forwarded);
        ``batch_shots`` bounds the perfect sampler's lockstep group size
        (``None``: all shots batched, ``1``: serial); the bits are identical
        either way.
        """
        return self._environment_for(contract_option).sample(
            rng=rng,
            nshots=nshots,
            batch_shots=batch_shots,
            sampler=sampler,
            sampler_options=sampler_options,
        )

    def _environment_for(self, contract_option: Optional[ContractOption]):
        """The attached environment if compatible, else an ephemeral one."""
        from repro.peps.envs import make_environment

        if self._env is not None and self._env.accepts(contract_option):
            return self._env
        return make_environment(self, contract_option)

    def to_statevector(self) -> np.ndarray:
        """Exact dense state (flat row-major qubit ordering; small lattices only)."""
        if self.n_sites > 20:
            raise ValueError(
                f"dense conversion of a {self.nrow}x{self.ncol} PEPS is not feasible"
            )
        b = self.backend
        operands = []
        inputs = []
        output = []
        for i in range(self.nrow):
            for j in range(self.ncol):
                operands.append(self.grid[i][j])
                labels = (
                    ("p", i, j),
                    ("v", i, j),        # up bond: between (i-1, j) and (i, j)
                    ("h", i, j),        # left bond: between (i, j-1) and (i, j)
                    ("v", i + 1, j),    # down bond
                    ("h", i, j + 1),    # right bond
                )
                inputs.append(labels)
                output.append(("p", i, j))
        result = contract_network(operands, inputs, output, backend=b)
        array = b.asarray(result)
        return np.asarray(array, dtype=np.complex128).reshape(-1)

    def __repr__(self) -> str:
        return (
            f"PEPS(shape={self.nrow}x{self.ncol}, max_bond={self.max_bond_dimension()}, "
            f"backend={self.backend.name!r})"
        )


# --------------------------------------------------------------------- #
# Constructors (module-level functions mirroring the Koala API live in
# repro.peps.__init__; these classmethod-style helpers build the grids).
# --------------------------------------------------------------------- #
def _product_grid(vectors: Sequence[Sequence[complex]], nrow: int, ncol: int, backend: Backend):
    grid = []
    it = iter(vectors)
    for i in range(nrow):
        row = []
        for j in range(ncol):
            vec = np.asarray(next(it), dtype=np.complex128)
            row.append(backend.astensor(vec.reshape(-1, 1, 1, 1, 1)))
        grid.append(row)
    return grid


def product_state(
    vectors: Sequence[Sequence[complex]],
    nrow: int,
    ncol: int,
    backend: Union[str, Backend, None] = "numpy",
) -> PEPS:
    """A bond-dimension-1 PEPS from one local state vector per site (row-major)."""
    backend = get_backend(backend)
    vectors = list(vectors)
    if len(vectors) != nrow * ncol:
        raise ValueError(f"expected {nrow * ncol} site vectors, got {len(vectors)}")
    return PEPS(_product_grid(vectors, nrow, ncol, backend), backend)


def computational_basis(
    bits: Sequence[int],
    nrow: int,
    ncol: int,
    phys_dim: int = 2,
    backend: Union[str, Backend, None] = "numpy",
) -> PEPS:
    """The computational basis state ``|bits>`` as a bond-dimension-1 PEPS."""
    vectors = []
    for bit in bits:
        v = np.zeros(phys_dim, dtype=np.complex128)
        v[int(bit)] = 1.0
        vectors.append(v)
    return product_state(vectors, nrow, ncol, backend)


def computational_zeros(
    nrow: int,
    ncol: int,
    phys_dim: int = 2,
    backend: Union[str, Backend, None] = "numpy",
) -> PEPS:
    """The all-zeros state ``|00...0>``."""
    return computational_basis([0] * (nrow * ncol), nrow, ncol, phys_dim, backend)


def computational_ones(
    nrow: int,
    ncol: int,
    phys_dim: int = 2,
    backend: Union[str, Backend, None] = "numpy",
) -> PEPS:
    """The all-ones state ``|11...1>``."""
    return computational_basis([1] * (nrow * ncol), nrow, ncol, phys_dim, backend)


def random_peps(
    nrow: int,
    ncol: int,
    bond_dim: int = 2,
    phys_dim: int = 2,
    backend: Union[str, Backend, None] = "numpy",
    seed: SeedLike = None,
    normalize_scale: bool = True,
) -> PEPS:
    """A PEPS with i.i.d. Gaussian entries and the given uniform bond dimension."""
    backend = get_backend(backend)
    rng = ensure_rng(seed)
    grid = []
    for i in range(nrow):
        row = []
        for j in range(ncol):
            up = 1 if i == 0 else bond_dim
            down = 1 if i == nrow - 1 else bond_dim
            left = 1 if j == 0 else bond_dim
            right = 1 if j == ncol - 1 else bond_dim
            shape = (phys_dim, up, left, down, right)
            data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            if normalize_scale:
                data /= np.sqrt(np.prod(shape))
            row.append(backend.astensor(data))
        grid.append(row)
    return PEPS(grid, backend)


def random_single_layer_grid(
    nrow: int,
    ncol: int,
    bond_dim: int = 2,
    backend: Union[str, Backend, None] = "numpy",
    seed: SeedLike = None,
):
    """A random single-layer grid (no physical legs), used by the contraction
    benchmarks that "directly generate a PEPS without physical indices"."""
    backend = get_backend(backend)
    rng = ensure_rng(seed)
    grid = []
    for i in range(nrow):
        row = []
        for j in range(ncol):
            up = 1 if i == 0 else bond_dim
            down = 1 if i == nrow - 1 else bond_dim
            left = 1 if j == 0 else bond_dim
            right = 1 if j == ncol - 1 else bond_dim
            shape = (up, left, down, right)
            data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            data /= np.sqrt(np.prod(shape))
            row.append(backend.astensor(data))
        grid.append(row)
    return grid


def _swap_matrix() -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
    )


def _swap_gate_qubits(backend: Backend, operator):
    """Exchange the two qubits of a two-site operator (matrix or 4-mode tensor)."""
    op = backend.astensor(operator)
    shape = backend.shape(op)
    if len(shape) == 2:
        d2 = shape[0]
        d = int(np.sqrt(d2))
        op = backend.reshape(op, (d, d, d, d))
        op = backend.transpose(op, (1, 0, 3, 2))
        return backend.reshape(op, (d2, d2))
    if len(shape) == 4:
        return backend.transpose(op, (1, 0, 3, 2))
    raise ValueError(f"two-site operator must have 2 or 4 modes, got {len(shape)}")
