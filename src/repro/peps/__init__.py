"""PEPS states, evolution algorithms and contraction algorithms.

The module-level constructors mirror the Koala API of the paper::

    from repro import peps
    from repro.peps import QRUpdate, BMPS
    from repro.tensornetwork import ImplicitRandomizedSVD

    qstate = peps.computational_zeros(nrow=2, ncol=3, backend="numpy")
    qstate.apply_operator(Y, [1])
    qstate.apply_operator(CX, [1, 4], QRUpdate(rank=2))
    result = qstate.expectation(H, use_cache=True,
                                contract_option=BMPS(ImplicitRandomizedSVD(rank=4)))
"""

from repro.peps.peps import (
    PEPS,
    computational_basis,
    computational_ones,
    computational_zeros,
    product_state,
    random_peps,
    random_single_layer_grid,
)
from repro.peps.update import (
    DirectUpdate,
    QRUpdate,
    LocalGramQRUpdate,
    LocalGramQRSVDUpdate,
    UpdateOption,
)
from repro.peps.contraction import (
    BMPS,
    ContractOption,
    Exact,
    TwoLayerBMPS,
    contract_single_layer,
)
from repro.peps.expectation import (
    EnvironmentCache,
    expectation_value,
    expectation_via_evolution,
)

__all__ = [
    "PEPS",
    "computational_basis",
    "computational_ones",
    "computational_zeros",
    "product_state",
    "random_peps",
    "random_single_layer_grid",
    "DirectUpdate",
    "QRUpdate",
    "LocalGramQRUpdate",
    "LocalGramQRSVDUpdate",
    "UpdateOption",
    "BMPS",
    "ContractOption",
    "Exact",
    "TwoLayerBMPS",
    "contract_single_layer",
    "EnvironmentCache",
    "expectation_value",
    "expectation_via_evolution",
]
