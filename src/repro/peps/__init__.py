"""PEPS states, evolution algorithms and contraction algorithms.

The module-level constructors mirror the Koala API of the paper::

    from repro import peps
    from repro.peps import QRUpdate, BMPS
    from repro.tensornetwork import ImplicitRandomizedSVD

    qstate = peps.computational_zeros(nrow=2, ncol=3, backend="numpy")
    qstate.apply_operator(Y, [1])
    qstate.apply_operator(CX, [1, 4], QRUpdate(rank=2))
    result = qstate.expectation(H, use_cache=True,
                                contract_option=BMPS(ImplicitRandomizedSVD(rank=4)))

Cached contraction state lives in the pluggable environment subsystem
(:mod:`repro.peps.envs`).  An :class:`~repro.peps.envs.base.Environment`
(``EnvExact``, ``EnvBoundaryMPS`` or the corner-transfer-matrix ``EnvCTM``)
owns the directional boundary caches of the ``<psi|psi>`` sandwich,
invalidates them *incrementally* when operator applications touch lattice
rows, and serves norms, multi-term expectation values, batched
``measure_1site``/``measure_2site`` passes, and basis-state ``sample`` draws
from the same caches::

    env = qstate.attach_environment(BMPS(ImplicitRandomizedSVD(rank=4)))
    qstate.expectation(H)                 # incremental boundary reuse
    env.measure_1site(Z)                  # all sites in one cached pass
    env.sample(rng=0, nshots=100)         # computational-basis samples
"""

from repro.peps.peps import (
    PEPS,
    computational_basis,
    computational_ones,
    computational_zeros,
    product_state,
    random_peps,
    random_single_layer_grid,
)
from repro.peps.update import (
    DirectUpdate,
    QRUpdate,
    LocalGramQRUpdate,
    LocalGramQRSVDUpdate,
    UpdateOption,
)
from repro.peps.contraction import (
    BMPS,
    ContractOption,
    CTMOption,
    Exact,
    TwoLayerBMPS,
    contract_single_layer,
)
from repro.peps.measure import (
    expectation_value,
    expectation_via_evolution,
)
from repro.peps.envs import (
    EnvBoundaryMPS,
    EnvCTM,
    EnvExact,
    Environment,
    make_environment,
)

__all__ = [
    "PEPS",
    "computational_basis",
    "computational_ones",
    "computational_zeros",
    "product_state",
    "random_peps",
    "random_single_layer_grid",
    "DirectUpdate",
    "QRUpdate",
    "LocalGramQRUpdate",
    "LocalGramQRSVDUpdate",
    "UpdateOption",
    "BMPS",
    "ContractOption",
    "CTMOption",
    "Exact",
    "TwoLayerBMPS",
    "contract_single_layer",
    "expectation_value",
    "expectation_via_evolution",
    "Environment",
    "EnvExact",
    "EnvBoundaryMPS",
    "EnvCTM",
    "make_environment",
]
