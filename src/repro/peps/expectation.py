"""Expectation values of local observables on PEPS, with intermediate caching.

For an operator ``H = sum_i H_i`` made of one- and two-site terms, the
expectation value is evaluated term by term (Eq. 5 of the paper).  Every term
requires contracting the two-layer ``<psi| H_i |psi>`` network; the terms
share most of that network, so the caching strategy of Section IV-B computes
the boundary environments of the plain ``<psi|psi>`` sandwich *once* — one
sweep from the top and one from the bottom — and then evaluates every term
with a short strip contraction (upper environment, the rows the term touches,
lower environment), cf. Figure 6.

Without caching, each term pays for a full two-layer contraction, which is
the baseline the Fig. 9 benchmark compares against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.interface import Backend
from repro.operators.hamiltonians import Hamiltonian
from repro.operators.observable import Observable
from repro.peps.contraction.options import BMPS, ContractOption, Exact, TwoLayerBMPS
from repro.peps.contraction.two_layer import (
    absorb_sandwich_row,
    close_boundaries,
    trivial_boundary,
)
from repro.tensornetwork.einsumsvd import EinsumSVDOption
from repro.tensornetwork.network import contract_network

#: Site tensor index order.
PHYS, UP, LEFT, DOWN, RIGHT = 0, 1, 2, 3, 4


def _local_terms(observable: Union[Observable, Hamiltonian]):
    """Local terms as ``(sites, matrix)`` pairs for both supported types."""
    if isinstance(observable, Observable):
        return observable.local_terms()
    if isinstance(observable, Hamiltonian):
        return [(term.sites, term.matrix) for term in observable.terms]
    raise TypeError(f"unsupported observable type {type(observable)!r}")


def _resolve_option(contract_option: Optional[ContractOption]) -> Tuple[Optional[EinsumSVDOption], Optional[int]]:
    """Extract the einsumsvd option and truncation bond from a contraction option."""
    if contract_option is None or isinstance(contract_option, Exact):
        return None, None
    if isinstance(contract_option, BMPS):
        svd_option = contract_option.resolved_svd_option()
        return svd_option, svd_option.rank
    raise TypeError(
        f"unsupported contraction option {type(contract_option).__name__} for expectation values"
    )


class EnvironmentCache:
    """Cached upper/lower boundary environments of the ``<psi|psi>`` sandwich.

    ``upper[i]`` is the boundary MPS obtained by absorbing rows ``0..i-1``
    from the top; ``lower[i]`` absorbs rows ``nrow-1..i+1`` from the bottom.
    Both are lists of ``(left, ket phys, bra phys, right)`` tensors whose
    physical legs face row ``i``.
    """

    def __init__(
        self,
        peps,
        svd_option: Optional[EinsumSVDOption],
        max_bond: Optional[int],
    ) -> None:
        self.peps = peps
        backend = peps.backend
        nrow, ncol = peps.nrow, peps.ncol

        self.upper: List[List] = [trivial_boundary(backend, ncol)]
        for i in range(nrow):
            self.upper.append(
                absorb_sandwich_row(
                    self.upper[-1],
                    peps.grid[i],
                    peps.grid[i],
                    option=svd_option,
                    max_bond=max_bond,
                    backend=backend,
                )
            )

        lower_rev: List[List] = [trivial_boundary(backend, ncol)]
        for i in range(nrow - 1, -1, -1):
            lower_rev.append(
                absorb_sandwich_row(
                    lower_rev[-1],
                    peps.grid[i],
                    peps.grid[i],
                    option=svd_option,
                    max_bond=max_bond,
                    backend=backend,
                    from_below=True,
                )
            )
        # lower_rev[k] has absorbed rows nrow-1 .. nrow-k; lower[i] must have
        # absorbed rows nrow-1 .. i+1, i.e. k = nrow-1-i.
        self.lower: List[List] = [lower_rev[nrow - 1 - i] for i in range(nrow)]

        self.norm_sq = close_boundaries(backend, self.upper[nrow], trivial_boundary(backend, ncol))


def expectation_value(
    peps,
    observable: Union[Observable, Hamiltonian],
    use_cache: bool = True,
    contract_option: Optional[ContractOption] = None,
    normalized: bool = True,
) -> float:
    """``<psi|O|psi>`` (optionally divided by ``<psi|psi>``) for a local observable."""
    backend = peps.backend
    svd_option, max_bond = _resolve_option(contract_option)
    terms = _local_terms(observable)

    if use_cache:
        cache = EnvironmentCache(peps, svd_option, max_bond)
        norm_sq = cache.norm_sq
    else:
        cache = None
        norm_sq = close_boundaries(
            backend,
            _fresh_upper(peps, peps.nrow, svd_option, max_bond),
            trivial_boundary(backend, peps.ncol),
        )

    total = 0.0 + 0.0j
    for sites, matrix in terms:
        if len(sites) == 0:
            total += complex(matrix[0, 0]) * norm_sq
            continue
        rows = [peps.site_position(s)[0] for s in sites]
        r0, r1 = min(rows), max(rows)
        if r1 - r0 > 1:
            raise ValueError(
                f"term on sites {sites} spans rows {r0}..{r1}; only terms within "
                f"two adjacent rows are supported"
            )
        if cache is not None:
            upper = cache.upper[r0]
            lower = cache.lower[r1]
        else:
            upper = _fresh_upper(peps, r0, svd_option, max_bond)
            lower = _fresh_lower(peps, r1, svd_option, max_bond)
        total += _strip_value(peps, upper, lower, r0, r1, sites, matrix)

    value = total / norm_sq if normalized else total
    return float(np.real(value))


def expectation_via_evolution(
    peps,
    hamiltonian,
    tau: float = 1e-3,
    contract_option: Optional[ContractOption] = None,
    update_option=None,
    normalized: bool = True,
) -> float:
    """Alternative expectation value via Trotter + Taylor expansion (Eq. 6).

    The paper's Section IV-B notes that ``<psi|H|psi>`` can also be estimated
    from a single additional two-layer contraction:

        <psi|H|psi> = ( <psi| prod_j exp(tau H_j) |psi> - <psi|psi> ) / tau + O(tau)

    i.e. apply one *forward* imaginary-time step of size ``tau`` to a copy of
    the state and measure the overlap with the original.  Compared with the
    term-by-term evaluation this needs one contraction instead of two full
    sweeps plus one strip per term, but the extra evolution step grows the
    bond dimension (or requires truncation via ``update_option``), and the
    answer carries an ``O(tau)`` Trotter bias.

    Parameters
    ----------
    peps:
        The PEPS state.
    hamiltonian:
        A :class:`~repro.operators.hamiltonians.Hamiltonian` (sums of local
        terms; Observables can be converted via their local terms as well).
    tau:
        Expansion step; smaller values reduce the Trotter bias but amplify
        cancellation error.
    contract_option:
        Contraction option used for both overlaps (default: exact).
    update_option:
        PEPS update option used to apply the ``exp(tau H_j)`` factors
        (default: exact application, no truncation).
    normalized:
        Divide by ``<psi|psi>``.
    """
    from repro.peps.contraction.options import TwoLayerBMPS
    from repro.peps.update import QRUpdate

    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    update_option = update_option if update_option is not None else QRUpdate(rank=None)

    evolved = peps.copy()
    for sites, matrix in _local_terms(hamiltonian):
        if len(sites) == 0:
            continue
        gate = _matrix_exponential(np.asarray(matrix, dtype=np.complex128), tau)
        evolved.apply_operator(gate, list(sites), update_option)

    inner_option = contract_option
    if inner_option is not None and not isinstance(inner_option, (Exact, BMPS)):
        raise TypeError(
            f"unsupported contraction option {type(inner_option).__name__}"
        )
    overlap = peps.inner(evolved, inner_option)
    norm_sq = peps.inner(peps, inner_option)
    constant = sum(
        complex(matrix[0, 0]) for sites, matrix in _local_terms(hamiltonian) if len(sites) == 0
    )
    value = (overlap - norm_sq) / tau + constant * norm_sq
    if normalized:
        value = value / norm_sq
    return float(np.real(value))


def _matrix_exponential(matrix: np.ndarray, tau: float) -> np.ndarray:
    """``exp(tau * matrix)`` for a Hermitian local-term matrix."""
    evals, evecs = np.linalg.eigh(matrix)
    return (evecs * np.exp(tau * evals)) @ evecs.conj().T


def _fresh_upper(peps, stop_row: int, svd_option, max_bond) -> List:
    """Upper environment absorbing rows ``0..stop_row-1`` (no caching)."""
    backend = peps.backend
    boundary = trivial_boundary(backend, peps.ncol)
    for i in range(stop_row):
        boundary = absorb_sandwich_row(
            boundary, peps.grid[i], peps.grid[i],
            option=svd_option, max_bond=max_bond, backend=backend,
        )
    return boundary


def _fresh_lower(peps, stop_row: int, svd_option, max_bond) -> List:
    """Lower environment absorbing rows ``nrow-1..stop_row+1`` (no caching)."""
    backend = peps.backend
    boundary = trivial_boundary(backend, peps.ncol)
    for i in range(peps.nrow - 1, stop_row, -1):
        boundary = absorb_sandwich_row(
            boundary, peps.grid[i], peps.grid[i],
            option=svd_option, max_bond=max_bond, backend=backend,
            from_below=True,
        )
    return boundary


def _operator_pieces(
    sites: Sequence[int],
    matrix: np.ndarray,
    positions: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]]:
    """Split a term operator into per-site pieces with a shared internal bond.

    Every piece is a 4-mode array ``(kappa_in, out, in, kappa_out)``; for a
    single-site term the kappa legs have dimension 1, for a two-site term the
    operator Schmidt decomposition links the two pieces through a bond of
    dimension at most ``d^2``.

    Returns a mapping ``(row, col) -> list of (piece, kappa_in_label, kappa_out_label)``.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    pieces: Dict[Tuple[int, int], List[Tuple[np.ndarray, object, object]]] = {}
    if len(sites) == 1:
        d = matrix.shape[0]
        piece = matrix.reshape(1, d, d, 1)
        pieces.setdefault(positions[0], []).append((piece, ("kap", id(matrix), 0), ("kap", id(matrix), 1)))
        return pieces
    if len(sites) == 2:
        d = int(np.sqrt(matrix.shape[0]))
        # G[i1 i2, j1 j2] -> G[i1, j1, i2, j2] -> matrix ((i1 j1), (i2 j2))
        tensor = matrix.reshape(d, d, d, d).transpose(0, 2, 1, 3)
        mat = tensor.reshape(d * d, d * d)
        u, s, vh = np.linalg.svd(mat, full_matrices=False)
        keep = int(np.count_nonzero(s > s[0] * 1e-14)) if s[0] > 0 else 1
        keep = max(keep, 1)
        root = np.sqrt(s[:keep])
        a = (u[:, :keep] * root).reshape(d, d, keep)          # (i1, j1, kappa)
        bpart = (root[:, None] * vh[:keep, :]).reshape(keep, d, d)  # (kappa, i2, j2)
        kap = ("kap", id(matrix), "bond")
        dangle_a = ("kap", id(matrix), "a")
        dangle_b = ("kap", id(matrix), "b")
        piece_a = a.reshape(d, d, keep)[np.newaxis, ...]       # (1, i1, j1, kappa)
        piece_b = bpart.reshape(keep, d, d)[..., np.newaxis]   # (kappa, i2, j2, 1)
        pieces.setdefault(positions[0], []).append((piece_a, dangle_a, kap))
        pieces.setdefault(positions[1], []).append((piece_b, kap, dangle_b))
        return pieces
    raise ValueError(f"terms on {len(sites)} sites are not supported")


def _strip_value(
    peps,
    upper: Sequence,
    lower: Sequence,
    r0: int,
    r1: int,
    sites: Sequence[int],
    matrix: np.ndarray,
) -> complex:
    """Contract (upper env) x (rows r0..r1 with the term inserted) x (lower env).

    The strip is contracted column by column; the per-column contraction runs
    through :func:`contract_network`, so intermediate sizes stay bounded by
    ``(boundary bond)^2 x (PEPS bond)^(2*height)`` times small factors.
    """
    backend = peps.backend
    ncol = peps.ncol
    rows = list(range(r0, r1 + 1))
    positions = [peps.site_position(s) for s in sites]
    for (r, _c) in positions:
        if not (r0 <= r <= r1):
            raise ValueError("term site outside the strip rows")
    piece_map = _operator_pieces(sites, matrix, positions)

    env = None
    env_labels: Tuple = ()
    pending: List = []  # kappa labels crossing column boundaries

    for j in range(ncol):
        operands = []
        inputs = []

        # Upper boundary tensor.
        operands.append(upper[j])
        inputs.append((("ub", j), ("uk", j), ("ubra", j), ("ub", j + 1)))

        # Lower boundary tensor.
        operands.append(lower[j])
        inputs.append((("lb", j), ("lk", j), ("lbra", j), ("lb", j + 1)))

        for r in rows:
            ket = peps.grid[r][j]
            bra = backend.conj(peps.grid[r][j])
            ket_up = ("uk", j) if r == r0 else ("vk", r, j)
            ket_down = ("lk", j) if r == r1 else ("vk", r + 1, j)
            bra_up = ("ubra", j) if r == r0 else ("vb", r, j)
            bra_down = ("lbra", j) if r == r1 else ("vb", r + 1, j)

            has_op = (r, j) in piece_map
            ket_phys = ("kp", r, j)
            bra_phys = ("bp", r, j) if has_op else ket_phys

            operands.append(ket)
            inputs.append((ket_phys, ket_up, ("hk", r, j), ket_down, ("hk", r, j + 1)))
            operands.append(bra)
            inputs.append((bra_phys, bra_up, ("hb", r, j), bra_down, ("hb", r, j + 1)))

            if has_op:
                for piece, kap_in, kap_out in piece_map[(r, j)]:
                    operands.append(backend.astensor(piece))
                    inputs.append((kap_in, bra_phys, ket_phys, kap_out))

        # Operator bonds whose two endpoints straddle this column boundary must
        # be carried in the environment until the second endpoint is reached.
        pending = _pending_kappas(piece_map, j)

        if env is not None:
            operands.append(env)
            inputs.append(env_labels)

        out_labels = [("ub", j + 1)]
        for r in rows:
            out_labels.append(("hk", r, j + 1))
            out_labels.append(("hb", r, j + 1))
        out_labels.append(("lb", j + 1))
        out_labels.extend(pending)

        env = contract_network(operands, inputs, tuple(out_labels), backend=backend)
        env_labels = tuple(out_labels)

    return backend.item(env)


def _pending_kappas(piece_map, col: int) -> List:
    """Operator-bond labels shared between a column <= col and a column > col."""
    ends: Dict = {}
    for (r, c), plist in piece_map.items():
        for piece, kap_in, kap_out in plist:
            for label in (kap_in, kap_out):
                ends.setdefault(label, []).append(c)
    pending = []
    for label, cols in ends.items():
        if len(cols) == 2 and min(cols) <= col < max(cols):
            pending.append(label)
    return pending
