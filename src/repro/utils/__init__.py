"""Utility helpers: flop counting, timing, and reproducible random numbers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Timer, WallClock
from repro.utils.flops import (
    contraction_flops,
    svd_flops,
    qr_flops,
    eigh_flops,
    matmul_flops,
    FlopCounter,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "WallClock",
    "contraction_flops",
    "svd_flops",
    "qr_flops",
    "eigh_flops",
    "matmul_flops",
    "FlopCounter",
]
