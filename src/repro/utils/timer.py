"""Small timing utilities used by the benchmark harnesses.

The benchmarks report two notions of time:

* real wall-clock time of the sequential NumPy execution, and
* *simulated* time accumulated by the distributed backend's cost model
  (see :mod:`repro.backends.distributed.cost_model`).

:class:`Timer` accumulates named wall-clock segments; :class:`WallClock` is a
trivial context manager for a single measurement.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, Union


class WallClock:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with WallClock() as clock:
    ...     sum(range(10))
    45
    >>> clock.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


class Timer:
    """Accumulate wall-clock time in named segments.

    >>> timer = Timer()
    >>> with timer.section("contract"):
    ...     _ = sum(range(100))
    >>> timer.total("contract") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._totals[name] += time.perf_counter() - start
            self._counts[name] += 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name``."""
        return self._totals[name]

    def count(self, name: str) -> int:
        """Number of times the section ``name`` was entered."""
        return self._counts[name]

    def report(self) -> Dict[str, float]:
        """A copy of all accumulated totals."""
        return dict(self._totals)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Every section as ``{name: {"total_s": ..., "count": ...}}``.

        The export the benchmark harnesses serialize instead of formatting
        totals by hand; round-trips through JSON unchanged.
        """
        return {
            name: {"total_s": self._totals[name], "count": self._counts[name]}
            for name in self._totals
        }

    def merge(self, other: Union["Timer", Dict[str, Dict[str, float]]]) -> "Timer":
        """Fold another timer (or its :meth:`as_dict` export) into this one.

        Totals and counts add per section, so merging per-worker timers
        yields the same report as if one timer had covered all the work.
        Returns ``self`` for chaining.
        """
        sections = other.as_dict() if isinstance(other, Timer) else other
        for name, entry in sections.items():
            self._totals[name] += float(entry["total_s"])
            self._counts[name] += int(entry["count"])
        return self

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()
