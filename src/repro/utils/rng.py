"""Reproducible random-number helpers.

Every stochastic component of the library (randomized SVD probes, random
quantum circuits, random PEPS/MPS initialization, VQE parameter
initialization) accepts either a seed, an existing :class:`numpy.random.Generator`,
or ``None``.  These helpers normalize that argument so the rest of the code
only ever deals with `Generator` objects.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    This is used when a driver (e.g. the random-circuit generator) needs to
    hand independent streams to sub-components while remaining reproducible
    under a single top-level seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
