"""Reproducible random-number helpers.

Every stochastic component of the library (randomized SVD probes, random
quantum circuits, random PEPS/MPS initialization, VQE parameter
initialization) accepts either a seed, an existing :class:`numpy.random.Generator`,
or ``None``.  These helpers normalize that argument so the rest of the code
only ever deals with `Generator` objects.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    This is used when a driver (e.g. the random-circuit generator) needs to
    hand independent streams to sub-components while remaining reproducible
    under a single top-level seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_rng(root_seed: Union[int, None], *key) -> np.random.Generator:
    """A named, statistically independent substream of a single root seed.

    The simulation runner (:mod:`repro.sim`) threads one ``RunSpec`` seed
    through every stochastic component of a run — circuit generation,
    parameter initialization, basis-state sampling — by deriving a dedicated
    generator per purpose::

        circuit_rng = derive_rng(spec.seed, "circuit")
        sample_rng = derive_rng(spec.seed, "sample", step_index)

    The same ``(root_seed, *key)`` always produces the same stream, and
    distinct keys produce independent streams, so whole runs are reproducible
    from one integer while components never share (and therefore never
    perturb) each other's stream positions.

    ``key`` elements may be strings or integers; ``root_seed=None`` draws a
    fresh entropy-based stream (non-reproducible, mirroring ``ensure_rng``).
    """
    if root_seed is None:
        return np.random.default_rng()
    words: List[int] = [_entropy_word(root_seed)]
    for part in key:
        if isinstance(part, (int, np.integer)):
            words.append(_entropy_word(part))
        else:
            words.append(zlib.crc32(str(part).encode("utf-8")) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(words))


def _entropy_word(value) -> int:
    """An integer as SeedSequence entropy, full width preserved.

    SeedSequence only takes non-negative integers; negative values map via
    64-bit two's complement.  No truncation of non-negative values, so
    distinct seeds always derive distinct streams.
    """
    value = int(value)
    if value < 0:
        value &= (1 << 64) - 1
    return value


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-serializable snapshot of a generator's exact stream position.

    The built-in workloads avoid live generator state entirely (they
    re-derive substreams with :func:`derive_rng`), but a custom workload that
    *does* hold a generator across steps can checkpoint it with this and
    continue the stream bit-for-bit via :func:`restore_rng`.
    """
    state = rng.bit_generator.state
    return {"bit_generator": state["bit_generator"], "state": _jsonify(state)}


def restore_rng(snapshot: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator from a :func:`rng_state` snapshot."""
    name = snapshot["bit_generator"]
    bit_generator_cls = getattr(np.random, name, None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r}")
    bit_generator = bit_generator_cls()
    bit_generator.state = _dejsonify(snapshot["state"])
    return np.random.Generator(bit_generator)


def _jsonify(value):
    """Convert a bit-generator state dict into plain JSON types."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": value.dtype.str}
    if isinstance(value, (np.integer,)):
        return int(value)
    return value


def _dejsonify(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {k: _dejsonify(v) for k, v in value.items()}
    return value
