"""Floating-point operation estimates for dense tensor algebra.

These estimates drive two things:

* the distributed backend's cost model (simulated execution time), and
* the Table II reproduction benchmark, which checks the measured scaling of
  BMPS / IBMPS / two-layer IBMPS against the paper's asymptotic formulas.

All counts are *order-of-magnitude* classical estimates (complex fused
multiply-adds counted as a single "flop" scaled by a constant); they are not
meant to match hardware counters exactly, only to preserve relative scaling.
"""

from __future__ import annotations

from math import prod
from typing import Dict, Iterable, List, Sequence


def matmul_flops(m: int, k: int, n: int, complex_dtype: bool = True) -> float:
    """Flops of an (m x k) @ (k x n) dense matrix product."""
    factor = 8.0 if complex_dtype else 2.0
    return factor * m * k * n


def contraction_flops(
    shape_a: Sequence[int],
    shape_b: Sequence[int],
    contracted_a: Sequence[int],
    contracted_b: Sequence[int],
    complex_dtype: bool = True,
) -> float:
    """Flops of a pairwise tensor contraction.

    ``contracted_a``/``contracted_b`` are the axes of each operand that are
    summed over.  The estimate is the classical
    ``(free_a) * (free_b) * (contracted)`` bilinear cost.
    """
    contracted_a = set(contracted_a)
    contracted_b = set(contracted_b)
    k_a = prod(shape_a[ax] for ax in contracted_a) if contracted_a else 1
    k_b = prod(shape_b[ax] for ax in contracted_b) if contracted_b else 1
    if k_a != k_b:
        raise ValueError(
            f"contracted volumes disagree: {k_a} vs {k_b} "
            f"(shapes {tuple(shape_a)} / {tuple(shape_b)})"
        )
    m = prod(s for ax, s in enumerate(shape_a) if ax not in contracted_a)
    n = prod(s for ax, s in enumerate(shape_b) if ax not in contracted_b)
    return matmul_flops(m, k_a, n, complex_dtype=complex_dtype)


def svd_flops(m: int, n: int, complex_dtype: bool = True) -> float:
    """Approximate flops of a dense (economy) SVD of an m x n matrix."""
    small, large = (m, n) if m <= n else (n, m)
    factor = 4.0 if complex_dtype else 1.0
    # Golub-Van Loan style estimate for an economy-size SVD.
    return factor * (4.0 * large * small**2 + 8.0 * small**3)


def qr_flops(m: int, n: int, complex_dtype: bool = True) -> float:
    """Approximate flops of a Householder QR of an m x n matrix (m >= n)."""
    if m < n:
        m, n = n, m
    factor = 4.0 if complex_dtype else 1.0
    return factor * (2.0 * m * n**2 - (2.0 / 3.0) * n**3)


def eigh_flops(n: int, complex_dtype: bool = True) -> float:
    """Approximate flops of a Hermitian eigendecomposition of an n x n matrix."""
    factor = 4.0 if complex_dtype else 1.0
    return factor * (10.0 * n**3)


class FlopCounter:
    """Accumulates flop counts by category.

    The NumPy backend can optionally be wrapped with a counter so that the
    Table II benchmark measures *algorithmic* cost independently of machine
    noise; the distributed backend always feeds one.

    The totals live in a private per-counter
    :class:`~repro.telemetry.metrics.MetricsRegistry` as labeled counters
    (``flops{category=einsum}`` / ``calls{category=einsum}``); the public API
    is unchanged and insertion-ordered like the dict-backed original.
    """

    def __init__(self) -> None:
        from repro.telemetry.metrics import MetricsRegistry

        self.registry = MetricsRegistry()
        self._categories: List[str] = []

    def add(self, category: str, flops: float, calls: int = 1) -> None:
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        if category not in self._categories:
            self._categories.append(category)
        self.registry.counter("flops", category=category).add(float(flops))
        self.registry.counter("calls", category=category).add(int(calls))

    @property
    def total(self) -> float:
        return sum(self.by_category().values())

    @property
    def total_calls(self) -> int:
        """Number of counted backend operations (one batched call counts once)."""
        return sum(self.calls_by_category().values())

    def by_category(self) -> Dict[str, float]:
        return {
            c: self.registry.value("flops", category=c) for c in self._categories
        }

    def calls_by_category(self) -> Dict[str, int]:
        """Per-category call counts — the batching benchmarks compare these.

        A lockstep sampler collapses ``nshots`` per-site ``"einsum"`` calls
        into one ``"einsum_batched"`` call, so the call counts (unlike the
        flop totals) shrink with the batch size.
        """
        return {
            c: self.registry.value("calls", category=c) for c in self._categories
        }

    def reset(self) -> None:
        self.registry.reset()
        self._categories.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self._totals.items()))
        return f"FlopCounter(total={self.total:.3g}, {parts})"


def tensor_bytes(shape: Iterable[int], itemsize: int = 16) -> int:
    """Number of bytes of a dense tensor of the given shape.

    The default ``itemsize`` corresponds to complex128, the working precision
    used throughout the library.
    """
    return int(prod(shape)) * itemsize


def peps_bmps_cost(n: int, r: int, m: int, d: int = 2) -> Dict[str, float]:
    """Closed-form leading-order costs from Table II of the paper.

    Parameters mirror the table: an ``n x n`` PEPS of bond dimension
    ``sqrt(r)`` (so ``r`` is the *sandwich* bond dimension of the two-layer
    network) contracted with truncation bond dimension ``m``; ``d`` is the
    physical dimension.  Returns a dict with leading-order time complexities
    ``bmps``, ``ibmps`` and ``two_layer_ibmps`` and the corresponding
    ``*_space`` entries:

    * BMPS time ``O(n^2 m^3 r^4)``, space ``O(max(m^2 r^3, r^4))``
    * IBMPS time ``O(n^2 m^2 r^4 + n^2 m^3 r^2)``, space ``O(max(m^2 r^2, r^4))``
    * two-layer IBMPS time ``O(n^2 d m^2 r^3 + n^2 d m^3 r^2)``,
      space ``O(max(m^2 r^2, r^4))``
    """
    return {
        "bmps": float(n**2) * m**3 * r**4,
        "ibmps": float(n**2) * (m**2 * r**4 + m**3 * r**2),
        "two_layer_ibmps": float(n**2) * d * (m**2 * r**3 + m**3 * r**2),
        "bmps_space": float(max(m**2 * r**3, r**4)),
        "ibmps_space": float(max(m**2 * r**2, r**4)),
        "two_layer_ibmps_space": float(max(m**2 * r**2, r**4)),
    }
