"""Tensor-backend abstraction layer.

The library is written once against the :class:`~repro.backends.interface.Backend`
protocol, and the concrete tensor arithmetic is supplied by one of the
registered backends:

``"numpy"``
    Sequential/threaded execution on :class:`numpy.ndarray` objects.

``"distributed"`` (aliases: ``"ctf"``, ``"cyclops"``)
    A distributed-memory backend standing in for Cyclops/CTF.  Tensors carry
    a block-cyclic distribution over a virtual processor grid and every
    operation is charged against an alpha-beta communication model and a
    per-core flop-rate model, so redistribution-heavy code paths
    (e.g. ``reshape`` before a factorization) are visibly more expensive than
    Gram-matrix based ones, matching the behaviour studied in the paper.
    Pass ``executor="pool"`` to actually execute on a pool of worker
    processes (rank-local contractions, real collectives) with bitwise
    parity to the default in-process ``executor="simulated"``.

Use :func:`get_backend` to obtain a backend instance by name.
"""

from __future__ import annotations

from typing import Union

from repro.backends.interface import (
    Backend,
    BackendExecutionError,
    parse_batched_subscripts,
    rewrite_batched_subscripts,
)
from repro.backends.numpy_backend import (
    NumPyBackend,
    clear_path_caches,
    path_cache_stats,
)


def get_backend(backend: Union[str, Backend, None] = "numpy", **kwargs) -> Backend:
    """Return a backend instance.

    Parameters
    ----------
    backend:
        A backend name (``"numpy"``, ``"distributed"``, ``"ctf"``,
        ``"cyclops"``), an existing :class:`Backend` instance (returned
        unchanged, ``kwargs`` must be empty), or ``None`` for the default
        NumPy backend.
    kwargs:
        Extra configuration forwarded to the backend constructor.  The
        distributed backend accepts ``nprocs``, ``cost_model``, ``executor``
        (``"simulated"`` or ``"pool"``) and, for the pool executor,
        ``fault``, ``max_restarts`` and ``timeout``.
    """
    if backend is None:
        backend = "numpy"
    if isinstance(backend, Backend):
        if kwargs:
            raise ValueError(
                "cannot pass constructor kwargs together with a backend instance"
            )
        return backend
    if not isinstance(backend, str):
        raise TypeError(f"backend must be a str or Backend, got {type(backend)!r}")
    name = backend.lower()
    if name in ("numpy", "np"):
        return NumPyBackend(**kwargs)
    if name in ("distributed", "ctf", "cyclops"):
        # Imported lazily to keep the numpy-only path dependency-free.
        from repro.backends.distributed import DistributedBackend

        return DistributedBackend(**kwargs)
    raise ValueError(
        f"unknown backend {backend!r}; available: 'numpy', 'distributed' (alias 'ctf')"
    )


__all__ = [
    "Backend",
    "BackendExecutionError",
    "NumPyBackend",
    "clear_path_caches",
    "get_backend",
    "parse_batched_subscripts",
    "path_cache_stats",
    "rewrite_batched_subscripts",
]
