"""Abstract tensor-backend protocol.

Every high-level routine in the library (MPS/MPO machinery, PEPS updates and
contractions, the ``einsumsvd`` implementations, the driver applications)
manipulates tensors exclusively through this interface, mirroring the
``tensorbackends`` abstraction used by the Koala library from the paper.
Backends operate on *backend-native* tensor objects: plain
:class:`numpy.ndarray` for the NumPy backend, :class:`DistTensor` for the
simulated distributed backend.  Native tensors are expected to support the
standard arithmetic operators (``+``, ``-``, ``*`` with scalars) and expose
``shape``/``ndim``/``dtype`` attributes.
"""

from __future__ import annotations

import abc
import string
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

Tensor = Any  # backend-native tensor object


class BackendExecutionError(RuntimeError):
    """A backend lost the ability to execute work (e.g. a worker pool died).

    Raised by executors when a compute resource fails unrecoverably — after
    transparent restarts have been exhausted — so that drivers can stop
    cleanly, keep the last consistent checkpoint, and surface the failure
    instead of hanging or silently corrupting state.
    """


def parse_batched_subscripts(
    subscripts: str, shapes: Sequence[Tuple[int, ...]]
) -> Tuple[List[str], str, List[int], int]:
    """Validate a batched einsum call and describe its batch structure.

    ``subscripts`` is a *plain* (non-batched, explicit ``->``) einsum string;
    every operand carries one extra **leading batch axis** of size ``B`` or
    ``1`` (size-1 axes broadcast against the batch).  Returns
    ``(input_specs, output_spec, batch_dims, B)``.
    """
    if "->" not in subscripts:
        raise ValueError(
            f"einsum_batched needs an explicit output ('->') in {subscripts!r}"
        )
    if "." in subscripts:
        raise ValueError("einsum_batched does not support ellipsis subscripts")
    lhs, output = subscripts.split("->")
    inputs = lhs.split(",")
    if len(inputs) != len(shapes):
        raise ValueError(
            f"{len(inputs)} subscript groups but {len(shapes)} operands"
        )
    batch_dims: List[int] = []
    for spec, shape in zip(inputs, shapes):
        if len(shape) != len(spec) + 1:
            raise ValueError(
                f"operand for {spec!r} must have a leading batch axis: expected "
                f"{len(spec) + 1} modes, got shape {tuple(shape)}"
            )
        batch_dims.append(int(shape[0]))
    batch = 1
    for dim in batch_dims:
        if dim != 1:
            if batch != 1 and dim != batch:
                raise ValueError(
                    f"incompatible batch sizes {batch_dims} for {subscripts!r}"
                )
            batch = dim
    return inputs, output, batch_dims, batch


def rewrite_batched_subscripts(
    subscripts: str, batch_dims: Sequence[int]
) -> Tuple[str, str]:
    """Insert a batch label into a plain einsum string.

    Operands whose batch axis has size > 1 get the label prepended; size-1
    axes are expected to be squeezed away by the caller.  The output always
    gets the label (callers with an all-broadcast batch skip the rewrite).
    Returns ``(rewritten_subscripts, batch_label)``.
    """
    lhs, output = subscripts.split("->")
    inputs = lhs.split(",")
    used = set(subscripts)
    label = next((c for c in string.ascii_letters if c not in used), None)
    if label is None:
        raise ValueError(
            f"no free subscript letter left to batch {subscripts!r}"
        )
    new_inputs = [
        label + spec if dim != 1 else spec
        for spec, dim in zip(inputs, batch_dims)
    ]
    return ",".join(new_inputs) + "->" + label + output, label


class Backend(abc.ABC):
    """Protocol for tensor creation, manipulation and dense linear algebra."""

    #: human-readable backend name (``"numpy"``, ``"distributed"``)
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Creation and conversion
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def astensor(self, data: Any, dtype: Optional[np.dtype] = None) -> Tensor:
        """Convert array-like ``data`` into a backend-native tensor."""

    @abc.abstractmethod
    def asarray(self, tensor: Tensor) -> np.ndarray:
        """Return the full dense :class:`numpy.ndarray` of ``tensor``.

        For distributed backends this implies a gather of all shards.
        """

    @abc.abstractmethod
    def zeros(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> Tensor:
        """Dense tensor of zeros."""

    @abc.abstractmethod
    def ones(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> Tensor:
        """Dense tensor of ones."""

    @abc.abstractmethod
    def eye(self, n: int, dtype: np.dtype = np.complex128) -> Tensor:
        """Identity matrix of size ``n``."""

    @abc.abstractmethod
    def random_uniform(
        self,
        shape: Sequence[int],
        low: float = -1.0,
        high: float = 1.0,
        rng: SeedLike = None,
        dtype: np.dtype = np.complex128,
    ) -> Tensor:
        """Tensor with i.i.d. uniform entries.

        For complex dtypes both the real and imaginary parts are drawn from
        ``U[low, high)`` — this is the probe distribution used by the
        randomized SVD (Algorithm 4 draws from ``[-1, 1]``).
        """

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def reshape(self, tensor: Tensor, shape: Sequence[int]) -> Tensor:
        """Reshape (fold/unfold) a tensor.

        On the distributed backend this is the operation the paper identifies
        as a potential bottleneck: changing the fold generally requires a
        global redistribution of the data.
        """

    @abc.abstractmethod
    def transpose(self, tensor: Tensor, axes: Sequence[int]) -> Tensor:
        """Permute tensor modes."""

    @abc.abstractmethod
    def conj(self, tensor: Tensor) -> Tensor:
        """Complex conjugate."""

    @abc.abstractmethod
    def copy(self, tensor: Tensor) -> Tensor:
        """An independent copy of ``tensor``."""

    # ------------------------------------------------------------------ #
    # Contraction and elementwise algebra
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands: Tensor) -> Tensor:
        """Einstein-summation contraction of one or more tensors."""

    def einsum_batched(self, subscripts: str, *operands: Tensor) -> Tensor:
        """Batched einsum: one contraction applied in lockstep across a batch.

        ``subscripts`` is a plain einsum string with an explicit output; every
        operand carries one extra *leading batch axis* of size ``B`` or ``1``
        (size-1 batch axes broadcast).  The result has shape
        ``(B, *item_shape)`` and item ``i`` equals
        ``einsum(subscripts, *[op[min(i, b_op - 1)] for op])`` up to round-off.

        Concrete backends override this with a single fused call (the NumPy
        backend plans one batch-aware cached path; the distributed backend
        charges the whole batch as *one* contraction, amortizing latency and
        message costs across items).  This default implementation is the
        semantic reference: loop over the batch and stack.
        """
        shapes = [self.shape(op) for op in operands]
        _, _, batch_dims, batch = parse_batched_subscripts(subscripts, shapes)
        items = []
        for i in range(batch):
            sliced = [
                self.astensor(self.asarray(op)[0 if dim == 1 else i])
                for op, dim in zip(operands, batch_dims)
            ]
            items.append(self.asarray(self.einsum(subscripts, *sliced)))
        return self.astensor(np.stack(items, axis=0))

    @abc.abstractmethod
    def tensordot(self, a: Tensor, b: Tensor, axes) -> Tensor:
        """Pairwise contraction over the given axes (NumPy ``tensordot`` semantics)."""

    @abc.abstractmethod
    def norm(self, tensor: Tensor) -> float:
        """Frobenius norm."""

    @abc.abstractmethod
    def item(self, tensor: Tensor) -> complex:
        """The scalar value of a 0-d (or single-element) tensor."""

    # ------------------------------------------------------------------ #
    # Dense factorizations of matrices (2-d tensors)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def svd(self, matrix: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Economy SVD ``matrix = U @ diag(s) @ Vh``; ``s`` is 1-d and real."""

    @abc.abstractmethod
    def qr(self, matrix: Tensor) -> Tuple[Tensor, Tensor]:
        """Reduced QR factorization of a matrix."""

    @abc.abstractmethod
    def eigh(self, matrix: Tensor) -> Tuple[Tensor, Tensor]:
        """Eigendecomposition of a Hermitian matrix: eigenvalues (ascending), eigenvectors."""

    # ------------------------------------------------------------------ #
    # Local <-> distributed movement
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def to_local(self, tensor: Tensor) -> np.ndarray:
        """Gather a (small) tensor into process-local memory as an ndarray.

        Algorithm 5 of the paper performs the eigendecomposition of the Gram
        matrix locally; this is the primitive that moves the Gram matrix out
        of distributed memory.
        """

    @abc.abstractmethod
    def from_local(self, array: np.ndarray, dtype: Optional[np.dtype] = None) -> Tensor:
        """Scatter a process-local ndarray back into a backend tensor."""

    # ------------------------------------------------------------------ #
    # Derived helpers (implemented once, shared by all backends)
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release any execution resources held by the backend.

        In-process backends hold none, so the default is a no-op; backends
        that own worker processes (the pool executor of the distributed
        backend) override this to shut them down.  Safe to call repeatedly.
        """

    def shape(self, tensor: Tensor) -> Tuple[int, ...]:
        """Shape of a tensor (native tensors expose ``.shape``)."""
        return tuple(tensor.shape)

    def ndim(self, tensor: Tensor) -> int:
        """Number of modes of a tensor."""
        return int(getattr(tensor, "ndim", len(tensor.shape)))

    def dtype(self, tensor: Tensor):
        """Data type of a tensor."""
        return tensor.dtype

    def size(self, tensor: Tensor) -> int:
        """Total number of elements."""
        out = 1
        for s in self.shape(tensor):
            out *= int(s)
        return out

    def random_normal(
        self,
        shape: Sequence[int],
        scale: float = 1.0,
        rng: SeedLike = None,
        dtype: np.dtype = np.complex128,
    ) -> Tensor:
        """Tensor with i.i.d. (complex) normal entries of the given scale."""
        rng = ensure_rng(rng)
        if np.issubdtype(np.dtype(dtype), np.complexfloating):
            data = scale * (
                rng.standard_normal(tuple(shape))
                + 1j * rng.standard_normal(tuple(shape))
            )
        else:
            data = scale * rng.standard_normal(tuple(shape))
        return self.astensor(np.asarray(data, dtype=dtype))

    def diag(self, vector: Tensor) -> Tensor:
        """Return a diagonal matrix built from a 1-d tensor."""
        vec = self.to_local(vector)
        return self.from_local(np.diag(vec))

    def allclose(self, a: Tensor, b: Tensor, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Elementwise comparison of two tensors (gathers both)."""
        return bool(np.allclose(self.asarray(a), self.asarray(b), rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
