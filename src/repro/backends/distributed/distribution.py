"""Processor grids and block-cyclic tensor distributions.

Cyclops distributes each tensor over a multi-dimensional processor grid with
a cyclic layout along each distributed mode.  The simulated backend keeps the
same descriptors so that it can reason about

* the local (per-process) share of each tensor,
* whether two operations use *compatible* distributions, and
* how much data a redistribution (e.g. a ``reshape`` whose fold crosses
  distributed modes) has to move.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import List, Sequence, Tuple

import numpy as np


def _factorize(n: int) -> List[int]:
    """Prime factorization of ``n`` (small integers only)."""
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


@dataclass(frozen=True)
class ProcessorGrid:
    """A multi-dimensional grid of processes."""

    dims: Tuple[int, ...]

    @property
    def nprocs(self) -> int:
        return int(prod(self.dims)) if self.dims else 1

    @staticmethod
    def for_tensor(shape: Sequence[int], nprocs: int) -> "ProcessorGrid":
        """Choose a grid for a tensor: assign prime factors of ``nprocs`` to the
        largest tensor modes first, greedily balancing the per-process shares."""
        shape = [int(s) for s in shape]
        if not shape or nprocs <= 1:
            return ProcessorGrid(dims=tuple(1 for _ in shape))
        grid = [1] * len(shape)
        remaining = [float(s) for s in shape]
        for factor in sorted(_factorize(nprocs), reverse=True):
            # Place the factor on the mode with the largest remaining share
            # that can still absorb it.
            order = sorted(range(len(shape)), key=lambda i: remaining[i], reverse=True)
            placed = False
            for idx in order:
                if shape[idx] // (grid[idx] * factor) >= 1:
                    grid[idx] *= factor
                    remaining[idx] /= factor
                    placed = True
                    break
            if not placed:
                # Fall back to the largest mode even if it over-decomposes.
                idx = order[0]
                grid[idx] *= factor
                remaining[idx] /= factor
        return ProcessorGrid(dims=tuple(grid))


@dataclass(frozen=True)
class Distribution:
    """Block-cyclic distribution of a tensor over a processor grid.

    ``grid.dims[i]`` processes share mode ``i`` cyclically; modes with grid
    dimension 1 are replicated along that axis of the grid.
    """

    shape: Tuple[int, ...]
    grid: ProcessorGrid

    @staticmethod
    def natural(shape: Sequence[int], nprocs: int) -> "Distribution":
        shape = tuple(int(s) for s in shape)
        return Distribution(shape=shape, grid=ProcessorGrid.for_tensor(shape, nprocs))

    @property
    def nprocs(self) -> int:
        return self.grid.nprocs

    @property
    def total_elements(self) -> int:
        return int(prod(self.shape)) if self.shape else 1

    def local_elements(self) -> int:
        """Elements held per process (ceiling of an even share)."""
        out = 1
        for dim, g in zip(self.shape, self.grid.dims):
            out *= -(-dim // g)  # ceil division
        return out

    def local_bytes(self, itemsize: int = 16) -> int:
        return self.local_elements() * itemsize

    def is_compatible_with(self, other: "Distribution") -> bool:
        """Whether data can be reinterpreted without moving between processes.

        A conservative check: the shapes must be refinements of each other
        along non-distributed trailing modes; in practice we treat only
        identical (shape, grid) pairs and fully-replicated tensors as
        compatible, which errs on the side of charging for redistribution —
        matching the paper's observation that CTF reshapes are expensive.
        """
        if self.shape == other.shape and self.grid.dims == other.grid.dims:
            return True
        if self.nprocs == 1 and other.nprocs == 1:
            return True
        if all(g == 1 for g in self.grid.dims) and all(g == 1 for g in other.grid.dims):
            return True
        return False

    def redistribution_bytes(self, other: "Distribution", itemsize: int = 16) -> int:
        """Bytes that must move to convert this distribution into ``other``."""
        if self.is_compatible_with(other):
            return 0
        return self.total_elements * itemsize

    # ------------------------------------------------------------------ #
    # Materialized block layout
    #
    # Cost accounting above reasons about cyclic layouts; when data actually
    # moves (the pool executor, sharded checkpoints) we materialize each
    # rank's share as one *contiguous block* per mode: rank coordinate ``c``
    # of a grid dimension ``g`` owns ``[c*extent//g, (c+1)*extent//g)``.
    # Blocks partition the tensor exactly, so shard -> reassemble is a
    # bitwise round trip; over-decomposed modes simply yield empty blocks.
    # ------------------------------------------------------------------ #
    def rank_coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of ``rank`` (C order over ``grid.dims``)."""
        if not self.grid.dims:
            return ()
        return tuple(int(c) for c in np.unravel_index(int(rank), self.grid.dims))

    def block_slices(self, rank: int) -> Tuple[slice, ...]:
        """The contiguous block of the global tensor owned by ``rank``."""
        coords = self.rank_coords(rank)
        slices = []
        for extent, g, c in zip(self.shape, self.grid.dims, coords):
            slices.append(slice((c * extent) // g, ((c + 1) * extent) // g))
        return tuple(slices)

    def shard(self, array: np.ndarray, rank: int) -> np.ndarray:
        """Extract (a contiguous copy of) ``rank``'s block of ``array``."""
        return np.ascontiguousarray(np.asarray(array)[self.block_slices(rank)])

    def reassemble(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        """Rebuild the global tensor from the per-rank blocks of :meth:`shard`.

        ``blocks[rank]`` must be the block for ``rank`` in ``0..nprocs-1``;
        the reassembled array is bitwise identical to the original.
        """
        blocks = [np.asarray(b) for b in blocks]
        if len(blocks) != self.nprocs:
            raise ValueError(
                f"expected {self.nprocs} blocks for grid {self.grid.dims}, "
                f"got {len(blocks)}"
            )
        out = np.empty(self.shape, dtype=blocks[0].dtype)
        for rank, block in enumerate(blocks):
            out[self.block_slices(rank)] = block
        return out
