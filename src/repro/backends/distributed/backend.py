"""The distributed-memory backend (simulated or real multi-process).

Implements the :class:`~repro.backends.interface.Backend` protocol on
:class:`DistTensor` objects.  Two executors share every code path:

* ``executor="simulated"`` (default) computes in-process; collectives only
  charge the cost model.
* ``executor="pool"`` runs contractions rank-local on a persistent pool of
  worker processes and moves real bytes through the collectives — with
  results *bitwise identical* to the simulated executor, because both
  evaluate the same deterministic pairwise contraction plan
  (:mod:`repro.backends.distributed.engine`).

Either way, every operation is charged to the backend's
:class:`CostModel` — under the pool executor the model acts as a
*predictor* whose accuracy is pinned against measured wall time by the
distributed benchmarks:

* ``einsum`` / ``tensordot`` — flops from the contraction-path optimizer,
  divided over the processes, plus a SUMMA-like communication volume;
* ``reshape`` — a redistribution (all-to-all) of the whole tensor whenever
  the fold is not trivially compatible with the current distribution — this
  is the CTF behaviour the paper's Algorithm 5 is designed to avoid;
* ``svd`` / ``qr`` / ``eigh`` — ScaLAPACK-style distributed factorizations
  with their latency-heavy panel structure;
* ``to_local`` / ``from_local`` — gather/broadcast of (small) tensors, as in
  Algorithm 5 where the Gram matrix is moved to local memory.

Use :meth:`DistributedBackend.stats` / :meth:`simulated_seconds` to read the
accumulated simulated execution profile, and :meth:`reset_stats` between
benchmark cases.
"""

from __future__ import annotations

from math import prod, sqrt
from typing import Any, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from repro.backends.distributed.comm import ProcessPoolCommunicator, SimulatedCommunicator
from repro.backends.distributed.cost_model import CostModel, ExecutionStats, MachineParameters
from repro.backends.distributed.dist_tensor import DistTensor
from repro.backends.distributed.distribution import Distribution
from repro.backends.distributed.engine import EinsumPlan, plan_einsum
from repro.backends.interface import (
    Backend,
    parse_batched_subscripts,
    rewrite_batched_subscripts,
)
from repro.telemetry.trace import TRACER as _TRACER
from repro.utils.flops import eigh_flops, qr_flops, svd_flops
from repro.utils.rng import SeedLike, ensure_rng


class DistributedBackend(Backend):
    """Cyclops/CTF-style distributed tensor backend (simulated or pooled)."""

    name = "distributed"

    def __init__(
        self,
        nprocs: int = 64,
        machine: Optional[MachineParameters] = None,
        procs_per_node: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        executor: str = "simulated",
        fault=None,
        max_restarts: int = 2,
        timeout: float = 60.0,
    ) -> None:
        if cost_model is not None:
            self.cost_model = cost_model
        else:
            self.cost_model = CostModel(nprocs=nprocs, machine=machine,
                                        procs_per_node=procs_per_node)
        executor = str(executor).lower()
        if executor == "simulated":
            if fault is not None:
                raise ValueError("fault injection requires executor='pool'")
            self.comm = SimulatedCommunicator(self.cost_model)
        elif executor == "pool":
            self.comm = ProcessPoolCommunicator(
                self.cost_model, fault=fault,
                max_restarts=max_restarts, timeout=timeout,
            )
        else:
            raise ValueError(
                f"unknown distributed executor {executor!r}; "
                "expected 'simulated' or 'pool'"
            )
        self.executor = executor

    def close(self) -> None:
        """Shut down the executor (terminates pool workers); idempotent."""
        self.comm.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nprocs(self) -> int:
        return self.cost_model.nprocs

    @property
    def stats(self) -> ExecutionStats:
        return self.cost_model.stats

    @property
    def simulated_seconds(self) -> float:
        return self.cost_model.simulated_seconds

    def reset_stats(self) -> None:
        self.cost_model.reset()

    # ------------------------------------------------------------------ #
    # Creation and conversion
    # ------------------------------------------------------------------ #
    def _wrap(self, array: np.ndarray) -> DistTensor:
        array = np.asarray(array)
        dist = Distribution.natural(array.shape, self.nprocs)
        return DistTensor(array, dist, self)

    def _data(self, tensor) -> np.ndarray:
        if isinstance(tensor, DistTensor):
            return tensor.array
        return np.asarray(tensor)

    def astensor(self, data: Any, dtype: Optional[np.dtype] = None) -> DistTensor:
        if isinstance(data, DistTensor):
            array = data.array
        else:
            array = np.asarray(data)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        return self._wrap(array)

    def asarray(self, tensor) -> np.ndarray:
        if isinstance(tensor, DistTensor):
            return np.asarray(self.comm.gather(tensor.array))
        return np.asarray(tensor)

    def zeros(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> DistTensor:
        return self._wrap(np.zeros(tuple(shape), dtype=dtype))

    def ones(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> DistTensor:
        return self._wrap(np.ones(tuple(shape), dtype=dtype))

    def eye(self, n: int, dtype: np.dtype = np.complex128) -> DistTensor:
        return self._wrap(np.eye(n, dtype=dtype))

    def random_uniform(
        self,
        shape: Sequence[int],
        low: float = -1.0,
        high: float = 1.0,
        rng: SeedLike = None,
        dtype: np.dtype = np.complex128,
    ) -> DistTensor:
        rng = ensure_rng(rng)
        shape = tuple(shape)
        if np.issubdtype(np.dtype(dtype), np.complexfloating):
            data = rng.uniform(low, high, shape) + 1j * rng.uniform(low, high, shape)
        else:
            data = rng.uniform(low, high, shape)
        return self._wrap(np.asarray(data, dtype=dtype))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, tensor, shape: Sequence[int]) -> DistTensor:
        data = self._data(tensor)
        shape = tuple(int(s) for s in shape)
        new_data = np.reshape(data, shape)
        if isinstance(tensor, DistTensor):
            new_dist = Distribution.natural(shape, self.nprocs)
            moved = tensor.distribution.redistribution_bytes(new_dist, data.itemsize)
            if moved:
                self.cost_model.redistribution(float(moved))
            return DistTensor(new_data, new_dist, self)
        return self._wrap(new_data)

    def transpose(self, tensor, axes: Sequence[int]) -> DistTensor:
        data = self._data(tensor)
        axes = tuple(int(a) for a in axes)
        # A mode permutation generally changes the processor-grid mapping;
        # CTF implements it as a redistribution of the full tensor.
        if isinstance(tensor, DistTensor) and axes != tuple(range(data.ndim)):
            self.cost_model.redistribution(float(data.nbytes), category="transpose")
        return self._wrap(np.transpose(data, axes))

    def conj(self, tensor) -> DistTensor:
        if isinstance(tensor, DistTensor):
            return tensor.conj()
        return self._wrap(np.conj(self._data(tensor)))

    def copy(self, tensor) -> DistTensor:
        return self._wrap(self._data(tensor).copy())

    # ------------------------------------------------------------------ #
    # Contraction and algebra
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands) -> DistTensor:
        datas = [self._data(op) for op in operands]
        plan = plan_einsum(subscripts, [d.shape for d in datas])
        if _TRACER.active:
            with _TRACER.span("einsum", subscripts=subscripts, backend="dist",
                              executor=self.executor):
                result = self.comm.contract(plan, datas)
        else:
            result = self.comm.contract(plan, datas)
        self._charge_einsum(plan, datas, result)
        if np.ndim(result) == 0:
            # Scalar results are produced by a final reduction across processes.
            result = self.comm.allreduce(np.asarray(result))
            return self._wrap(np.asarray(result))
        return self._wrap(result)

    def einsum_batched(self, subscripts: str, *operands) -> DistTensor:
        """Lockstep batched contraction charged as *one* distributed call.

        A loop of per-item ``einsum`` calls would pay the SUMMA startup
        latency (``2 sqrt(p)`` messages) and, for scalar outputs, one
        allreduce *per item*; the batched call ships the stacked operands
        through the grid once, so those per-call overheads are charged once
        while the flop volume still covers the whole batch.
        """
        datas = [self._data(op) for op in operands]
        shapes = [d.shape for d in datas]
        _, output, batch_dims, batch = parse_batched_subscripts(subscripts, shapes)
        if batch == 1:
            squeezed = [d.reshape(d.shape[1:]) for d in datas]
            plan = plan_einsum(subscripts, [d.shape for d in squeezed])
            result = self.comm.contract(plan, squeezed)
            self._charge_einsum(plan, squeezed, result)
            if output == "":
                result = self.comm.allreduce(np.asarray(result))
            return self._wrap(np.asarray(result)[np.newaxis, ...])
        batched_subscripts, _ = rewrite_batched_subscripts(subscripts, batch_dims)
        used = [
            d.reshape(d.shape[1:]) if dim == 1 else d
            for d, dim in zip(datas, batch_dims)
        ]
        plan = plan_einsum(batched_subscripts, [d.shape for d in used])
        if _TRACER.active:
            with _TRACER.span(
                "einsum_batched", subscripts=subscripts, batch=batch,
                backend="dist", executor=self.executor,
            ):
                result = self.comm.contract(plan, used)
        else:
            result = self.comm.contract(plan, used)
        self._charge_einsum(plan, used, result)
        if output == "":
            # One reduction finalizes every item's scalar at once.
            result = self.comm.allreduce(np.asarray(result))
        return self._wrap(result)

    def _charge_einsum(self, plan: EinsumPlan, datas, result) -> None:
        itemsize = 16.0
        p = self.nprocs
        operand_bytes = sum(d.nbytes for d in datas) + getattr(result, "nbytes", 16)
        # SUMMA-like communication: every operand travels across a sqrt(p)
        # fraction of the grid during the contraction.
        comm_bytes = operand_bytes / max(1.0, sqrt(p)) if p > 1 else 0.0
        messages = 2.0 * sqrt(p) if p > 1 else 0.0
        self.cost_model.contraction(flops=plan.total_flops, comm_bytes=comm_bytes,
                                    messages=messages, category="einsum")
        self.cost_model.observe_tensor(float(plan.max_intermediate_size) * itemsize)

    def tensordot(self, a, b, axes) -> DistTensor:
        da, db = self._data(a), self._data(b)
        result = np.tensordot(da, db, axes=axes)
        if isinstance(axes, int):
            k = prod(da.shape[da.ndim - axes:]) if axes else 1
        else:
            axes_a = [axes[0]] if np.isscalar(axes[0]) else list(axes[0])
            k = prod(da.shape[ax] for ax in axes_a) if axes_a else 1
        m = da.size // max(k, 1)
        n = db.size // max(k, 1)
        p = self.nprocs
        comm = (da.nbytes + db.nbytes + result.nbytes) / max(1.0, sqrt(p)) if p > 1 else 0.0
        self.cost_model.contraction(flops=8.0 * m * k * n, comm_bytes=comm,
                                    messages=2.0 * sqrt(p) if p > 1 else 0.0,
                                    category="tensordot")
        return self._wrap(result)

    def norm(self, tensor) -> float:
        data = self._data(tensor)
        self.cost_model.contraction(flops=2.0 * data.size, category="norm")
        self.cost_model.allreduce(16.0)
        return float(np.linalg.norm(data.ravel()))

    def item(self, tensor) -> complex:
        data = self._data(tensor)
        if data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {data.shape}")
        self.cost_model.broadcast(16.0)
        return complex(data.reshape(()))

    # ------------------------------------------------------------------ #
    # Distributed factorizations (ScaLAPACK-style costs)
    # ------------------------------------------------------------------ #
    def svd(self, matrix) -> Tuple[DistTensor, DistTensor, DistTensor]:
        data = self._data(matrix)
        if data.ndim != 2:
            raise ValueError(f"svd expects a matrix, got ndim={data.ndim}")
        try:
            u, s, vh = scipy.linalg.svd(data, full_matrices=False, lapack_driver="gesdd")
        except np.linalg.LinAlgError:  # pragma: no cover
            u, s, vh = scipy.linalg.svd(data, full_matrices=False, lapack_driver="gesvd")
        self.cost_model.distributed_factorization(
            data.shape[0], data.shape[1], svd_flops(*data.shape), category="svd"
        )
        return self._wrap(u), self._wrap(s), self._wrap(vh)

    def qr(self, matrix) -> Tuple[DistTensor, DistTensor]:
        data = self._data(matrix)
        if data.ndim != 2:
            raise ValueError(f"qr expects a matrix, got ndim={data.ndim}")
        q, r = np.linalg.qr(data, mode="reduced")
        self.cost_model.distributed_factorization(
            data.shape[0], data.shape[1], qr_flops(*data.shape), category="qr"
        )
        return self._wrap(q), self._wrap(r)

    def eigh(self, matrix) -> Tuple[DistTensor, DistTensor]:
        data = self._data(matrix)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError(f"eigh expects a square matrix, got shape {data.shape}")
        w, v = np.linalg.eigh(data)
        self.cost_model.distributed_factorization(
            data.shape[0], data.shape[1], eigh_flops(data.shape[0]), category="eigh"
        )
        return self._wrap(w), self._wrap(v)

    # ------------------------------------------------------------------ #
    # Local <-> distributed movement
    # ------------------------------------------------------------------ #
    def to_local(self, tensor) -> np.ndarray:
        data = self._data(tensor)
        return np.asarray(self.comm.gather(data))

    def from_local(self, array: np.ndarray, dtype: Optional[np.dtype] = None) -> DistTensor:
        array = np.asarray(array)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        return self._wrap(np.asarray(self.comm.broadcast(array)))
