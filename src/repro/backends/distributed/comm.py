"""Simulated communicator.

A thin façade over :class:`~repro.backends.distributed.cost_model.CostModel`
that mimics the collective operations an MPI-based tensor framework issues.
No data actually moves between processes (there is only one); the value of
the class is that the *code paths* of the distributed backend express their
communication explicitly, and every collective is charged to the cost model,
so algorithm variants can be compared by their simulated communication
profile exactly as the paper compares them on Stampede2.
"""

from __future__ import annotations


import numpy as np

from repro.backends.distributed.cost_model import CostModel


class SimulatedCommunicator:
    """Collective operations charged against a :class:`CostModel`."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    @property
    def nprocs(self) -> int:
        return self.cost_model.nprocs

    # The data arguments are real ndarrays held "replicated"; each collective
    # returns its logical result and charges the model for the traffic an MPI
    # implementation would generate.

    def allreduce(self, array: np.ndarray) -> np.ndarray:
        """Sum-allreduce: in the simulation the local value already is the sum."""
        self.cost_model.allreduce(array.nbytes)
        return array

    def gather(self, array: np.ndarray) -> np.ndarray:
        """Gather a distributed tensor's shards to one process."""
        self.cost_model.gather(array.nbytes)
        return array

    def broadcast(self, array: np.ndarray) -> np.ndarray:
        """Broadcast a replicated (small) tensor to all processes."""
        self.cost_model.broadcast(array.nbytes)
        return array

    def alltoall(self, array: np.ndarray) -> np.ndarray:
        """All-to-all personalized exchange (redistribution)."""
        self.cost_model.redistribution(array.nbytes)
        return array

    def barrier(self) -> None:
        """Synchronization barrier (latency-only)."""
        import math

        p = self.nprocs
        messages = max(1.0, math.log2(p)) if p > 1 else 0.0
        self.cost_model.stats.record("barrier", self.cost_model.machine.alpha * messages,
                                     messages=messages)
