"""Communicators: simulated collectives and a real multi-process pool.

:class:`SimulatedCommunicator` is a thin façade over
:class:`~repro.backends.distributed.cost_model.CostModel` that mimics the
collective operations an MPI-based tensor framework issues.  No data moves
(there is only one process); the value of the class is that the code paths
of the distributed backend express their communication explicitly, and every
collective is charged to the cost model, so algorithm variants can be
compared by their simulated communication profile exactly as the paper
compares them on Stampede2.

:class:`ProcessPoolCommunicator` implements the same surface over a
persistent pool of worker processes, one per rank.  Collectives scatter
contiguous blocks of the payload to the ranks and reassemble the returned
blocks; contractions ship each rank its operand slices (per the plan's shard
label) and concatenate the rank-local results.  The cost model is still
charged identically — it is the *predictor* whose accuracy the distributed
benchmarks measure against real pool wall time.

Fault tolerance: a worker that dies mid-request is respawned and the
in-flight request is resent (workers are stateless, so every request is a
pure function of its message).  When the restart budget is exhausted the
communicator raises :class:`PoolError`
(a :class:`~repro.backends.interface.BackendExecutionError`), letting the
simulation driver stop cleanly on its last scheduled checkpoint instead of
hanging.  :class:`WorkerFault` injects deterministic worker crashes for the
fault-injection test suite.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.distributed.cost_model import CostModel
from repro.backends.distributed.engine import (
    EinsumPlan,
    concat_blocks,
    execute_plan,
    shard_bounds,
    slice_operands,
)
from repro.backends.interface import BackendExecutionError
from repro.telemetry.trace import TRACER as _TRACER


class PoolError(BackendExecutionError):
    """The worker pool can no longer execute requests."""


class _WorkerDied(Exception):
    """Internal: the worker serving a request exited before replying."""


@dataclass(frozen=True)
class WorkerFault:
    """Deterministic crash injection for one pool worker.

    The worker for ``rank`` counts its handled requests of kind ``op``
    (``"contract"``, ``"echo"`` or ``"ping"``) and hard-exits on the
    ``after_calls``-th one, before computing a reply.  ``mode="once"`` clears
    the fault when the worker is respawned (the restart is transparent);
    ``mode="always"`` re-arms the respawned worker to die on its first
    matching call, so the restart budget is exhausted deterministically.
    """

    rank: int = 0
    op: str = "contract"
    after_calls: int = 1
    mode: str = "once"

    @staticmethod
    def from_config(config: "WorkerFault | Dict[str, Any] | None") -> Optional["WorkerFault"]:
        if config is None or isinstance(config, WorkerFault):
            return config
        unknown = set(config) - {"rank", "op", "after_calls", "mode"}
        if unknown:
            raise ValueError(f"unknown fault keys: {sorted(unknown)}")
        fault = WorkerFault(
            rank=int(config.get("rank", 0)),
            op=str(config.get("op", "contract")),
            after_calls=int(config.get("after_calls", 1)),
            mode=str(config.get("mode", "once")),
        )
        if fault.mode not in ("once", "always"):
            raise ValueError(f"fault mode must be 'once' or 'always', got {fault.mode!r}")
        if fault.op not in ("contract", "echo", "ping"):
            raise ValueError(f"fault op must be a worker request kind, got {fault.op!r}")
        if fault.after_calls < 1:
            raise ValueError("fault after_calls must be >= 1")
        return fault


def _worker_main(rank: int, conn, fault: Optional[WorkerFault]) -> None:
    """Request loop of one pool worker (runs in a child process).

    Workers are stateless: each request is a pure function of its message,
    which is what makes the driver's resend-after-respawn recovery exact.
    """
    # The driver owns interrupt handling (it checkpoints on SIGINT and still
    # needs the pool to serve the checkpoint's gathers); workers ignore it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    calls = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        if op == "shutdown":
            conn.close()
            return
        if fault is not None and op == fault.op:
            calls += 1
            if calls >= fault.after_calls:
                os._exit(17)  # simulate a hard crash: no reply, no cleanup
        try:
            if op == "contract":
                result: Any = execute_plan(message[1], message[2], message[3])
            elif op == "echo":
                result = message[1]
            elif op == "ping":
                result = None
            else:
                raise ValueError(f"unknown pool request {op!r}")
            conn.send(("ok", result))
        except Exception as exc:  # surface worker-side errors, don't die
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return


class SimulatedCommunicator:
    """Collective operations charged against a :class:`CostModel`."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    @property
    def nprocs(self) -> int:
        return self.cost_model.nprocs

    # The data arguments are real ndarrays held "replicated"; each collective
    # returns its logical result and charges the model for the traffic an MPI
    # implementation would generate.

    def allreduce(self, array: np.ndarray) -> np.ndarray:
        """Sum-allreduce: in the simulation the local value already is the sum."""
        self.cost_model.allreduce(array.nbytes)
        return array

    def gather(self, array: np.ndarray) -> np.ndarray:
        """Gather a distributed tensor's shards to one process."""
        self.cost_model.gather(array.nbytes)
        return array

    def broadcast(self, array: np.ndarray) -> np.ndarray:
        """Broadcast a replicated (small) tensor to all processes."""
        self.cost_model.broadcast(array.nbytes)
        return array

    def alltoall(self, array: np.ndarray) -> np.ndarray:
        """All-to-all personalized exchange (redistribution)."""
        self.cost_model.redistribution(array.nbytes)
        return array

    def barrier(self) -> None:
        """Synchronization barrier (latency-only)."""
        p = self.nprocs
        messages = max(1.0, math.log2(p)) if p > 1 else 0.0
        self.cost_model.stats.record("barrier", self.cost_model.machine.alpha * messages,
                                     messages=messages)

    def contract(self, plan: EinsumPlan, operands: Sequence[np.ndarray]) -> np.ndarray:
        """Execute a contraction plan (in-process for the simulated executor)."""
        return execute_plan(plan, operands)

    def close(self) -> None:
        """Release communicator resources (no-op for the simulated executor)."""


class ProcessPoolCommunicator(SimulatedCommunicator):
    """The :class:`SimulatedCommunicator` surface over real worker processes.

    Every collective and contraction charges the cost model exactly as the
    simulated communicator does (the predictor must not depend on the
    executor), then moves real bytes through the pool.  Results are bitwise
    identical to the simulated executor: collectives partition and reassemble
    the payload exactly, and contractions run the same deterministic pairwise
    plan on operand slices (see :mod:`repro.backends.distributed.engine`).
    """

    def __init__(
        self,
        cost_model: CostModel,
        fault: "WorkerFault | Dict[str, Any] | None" = None,
        max_restarts: int = 2,
        timeout: float = 60.0,
    ) -> None:
        super().__init__(cost_model)
        self.fault = WorkerFault.from_config(fault)
        self.max_restarts = int(max_restarts)
        self.timeout = float(timeout)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context()
        self._procs: List[Any] = [None] * self.nprocs
        self._conns: List[Any] = [None] * self.nprocs
        self._restarts = 0
        self._round_robin = 0
        self._closed = False
        for rank in range(self.nprocs):
            self._spawn(rank, first=True)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, rank: int, first: bool) -> None:
        fault = None
        if self.fault is not None and self.fault.rank == rank:
            if first:
                fault = self.fault
            elif self.fault.mode == "always":
                # Re-arm immediately: the resent request dies again, so the
                # restart budget is exhausted deterministically.
                fault = WorkerFault(rank=rank, op=self.fault.op,
                                    after_calls=1, mode="always")
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(rank, child_conn, fault),
            name=f"repro-pool-{rank}", daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[rank] = proc
        self._conns[rank] = parent_conn

    def _restart(self, rank: int) -> None:
        try:
            self._conns[rank].close()
        except OSError:  # pragma: no cover
            pass
        proc = self._procs[rank]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        self._restarts += 1
        self.cost_model.stats.registry.counter(
            "dist.pool.restarts", rank=str(rank)).add(1)
        if self._restarts > self.max_restarts:
            raise PoolError(
                f"pool worker for rank {rank} died and the restart budget "
                f"({self.max_restarts}) is exhausted"
            )
        self._spawn(rank, first=False)

    @property
    def restarts(self) -> int:
        """Workers respawned so far (over the communicator's lifetime)."""
        return self._restarts

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    def _count(self, op: str, rank: int) -> None:
        self.cost_model.stats.registry.counter(
            "dist.pool.requests", op=op, rank=str(rank)).add(1)

    def _send(self, rank: int, message: Tuple) -> None:
        try:
            self._conns[rank].send(message)
        except (BrokenPipeError, OSError):
            pass  # the death is detected (and recovered) on the receive side

    def _recv(self, rank: int) -> Tuple[str, Any]:
        conn, proc = self._conns[rank], self._procs[rank]
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if conn.poll(0.02):
                    return conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied(rank)
            if not proc.is_alive():
                # Drain a reply that may have raced the worker's exit.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied(rank)
            if time.monotonic() > deadline:
                # A hung worker is treated like a dead one so the run can
                # never hang: kill it and let the restart budget decide.
                proc.terminate()
                raise _WorkerDied(rank)

    def _finish(self, rank: int, message: Tuple) -> Any:
        """Receive the reply for ``message``, resending across restarts."""
        while True:
            try:
                status, payload = self._recv(rank)
            except _WorkerDied:
                self._restart(rank)  # raises PoolError when exhausted
                self._send(rank, message)
                continue
            if status == "error":
                raise PoolError(f"rank {rank} request failed: {payload}")
            return payload

    def _request(self, rank: int, message: Tuple) -> Any:
        self._check_open()
        self._count(message[0], rank)
        self._send(rank, message)
        return self._finish(rank, message)

    def _check_open(self) -> None:
        if self._closed:
            raise PoolError("the worker pool has been closed")

    # ------------------------------------------------------------------ #
    # Collectives: charge like the simulation, then move real bytes
    # ------------------------------------------------------------------ #
    def _exchange(self, op: str, array: np.ndarray) -> np.ndarray:
        """Scatter contiguous 1-d blocks to every rank and reassemble.

        The round trip moves every byte of the payload through the pool;
        the partition is exact, so the reassembled array is bitwise equal
        to the input — which is what keeps pool collectives numerically
        transparent (they implement data *movement*, not reduction: as in
        the simulated communicator, the driver's value already is the
        logical result).
        """
        data = np.asarray(array)
        flat = np.ascontiguousarray(data).reshape(-1)
        bounds = shard_bounds(flat.size, self.nprocs)
        messages = {
            rank: ("echo", flat[lo:hi]) for rank, (lo, hi) in enumerate(bounds)
        }
        self._check_open()
        for rank, message in messages.items():
            self._count("echo", rank)
            self._send(rank, message)
        if _TRACER.active:
            with _TRACER.span("dist.comm", op=op, nbytes=int(data.nbytes),
                              nprocs=self.nprocs):
                blocks = [self._finish(rank, messages[rank])
                          for rank in range(self.nprocs)]
        else:
            blocks = [self._finish(rank, messages[rank])
                      for rank in range(self.nprocs)]
        if len(blocks) > 1:
            flat_out = np.concatenate([np.asarray(b) for b in blocks])
        else:
            flat_out = np.asarray(blocks[0])
        return flat_out.reshape(data.shape)

    def allreduce(self, array: np.ndarray) -> np.ndarray:
        self.cost_model.allreduce(array.nbytes)
        return self._exchange("allreduce", array)

    def gather(self, array: np.ndarray) -> np.ndarray:
        self.cost_model.gather(array.nbytes)
        return self._exchange("gather", array)

    def broadcast(self, array: np.ndarray) -> np.ndarray:
        self.cost_model.broadcast(array.nbytes)
        return self._exchange("broadcast", array)

    def alltoall(self, array: np.ndarray) -> np.ndarray:
        self.cost_model.redistribution(array.nbytes)
        return self._exchange("alltoall", array)

    def barrier(self) -> None:
        super().barrier()
        self._check_open()
        for rank in range(self.nprocs):
            self._count("ping", rank)
            self._send(rank, ("ping",))
        for rank in range(self.nprocs):
            self._finish(rank, ("ping",))

    # ------------------------------------------------------------------ #
    # Contractions: rank-local pairwise chains + reduction on the driver
    # ------------------------------------------------------------------ #
    def contract(self, plan: EinsumPlan, operands: Sequence[np.ndarray]) -> np.ndarray:
        self._check_open()
        arrays = [np.asarray(op) for op in operands]
        if plan.shard_label is None:
            # No output label to partition on (e.g. scalar results) or an
            # unparseable fallback: ship the whole contraction to one rank,
            # spreading such jobs round-robin.  Unsharded execution is
            # trivially invariant to the rank count.
            rank = self._round_robin % self.nprocs
            self._round_robin += 1
            message = ("contract", plan, arrays, None)
            if _TRACER.active:
                with _TRACER.span("dist.rank", rank=rank, phase="compute",
                                  subscripts=plan.subscripts):
                    return np.asarray(self._request(rank, message))
            return np.asarray(self._request(rank, message))
        # Each rank owns a contiguous range of the plan's canonical blocks
        # and receives only the operand slices covering that range (plus the
        # block bounds relative to its slice), so rank-local execution runs
        # the exact same kernel calls the serial executor would.
        canonical = plan.canonical_bounds()
        assignment = shard_bounds(plan.shard_parts, self.nprocs)
        messages = {}
        for rank, (first, last) in enumerate(assignment):
            if last <= first:
                continue  # more ranks than canonical blocks: nothing to do
            offset, end = canonical[first][0], canonical[last - 1][1]
            local = slice_operands(plan, arrays, offset, end)
            relative = [(lo - offset, hi - offset) for lo, hi in canonical[first:last]]
            messages[rank] = ("contract", plan, local, relative)
        for rank, message in messages.items():
            self._count("contract", rank)
            self._send(rank, message)
        blocks = []
        for rank, message in messages.items():
            if _TRACER.active:
                with _TRACER.span("dist.rank", rank=rank, phase="compute",
                                  subscripts=plan.subscripts):
                    blocks.append(self._finish(rank, message))
            else:
                blocks.append(self._finish(rank, message))
        return concat_blocks(plan, blocks)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the pool down; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
