"""Distributed tensor objects for the simulated backend.

A :class:`DistTensor` pairs a dense ndarray (the *logical* global tensor —
numerically identical to what the NumPy backend would compute) with a
:class:`~repro.backends.distributed.distribution.Distribution` descriptor and
a reference to the owning backend's cost model.  Elementwise arithmetic is
supported directly on the objects and charged to the model, so library code
written for NumPy arrays (``a + b``, ``2.0 * t``, ``-t``) works unchanged.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backends.distributed.distribution import Distribution


class DistTensor:
    """A dense tensor carrying a simulated block-cyclic distribution."""

    __array_priority__ = 100  # ensure ndarray defers to our operators

    def __init__(self, array: np.ndarray, distribution: Distribution, backend) -> None:
        array = np.asarray(array)
        if tuple(array.shape) != tuple(distribution.shape):
            raise ValueError(
                f"array shape {array.shape} does not match distribution shape "
                f"{distribution.shape}"
            )
        self.array = array
        self.distribution = distribution
        self.backend = backend
        backend.cost_model.observe_tensor(array.nbytes)

    # ------------------------------------------------------------------ #
    # ndarray-like metadata
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.array.shape)

    @property
    def ndim(self) -> int:
        return self.array.ndim

    @property
    def dtype(self):
        return self.array.dtype

    @property
    def size(self) -> int:
        return int(self.array.size)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def local_bytes(self) -> int:
        """Bytes held by each simulated process."""
        return self.distribution.local_bytes(self.array.itemsize)

    def __repr__(self) -> str:
        return (
            f"DistTensor(shape={self.shape}, grid={self.distribution.grid.dims}, "
            f"dtype={self.dtype})"
        )

    # ------------------------------------------------------------------ #
    # Arithmetic (elementwise operations are perfectly parallel; charge the
    # per-process flops only).
    # ------------------------------------------------------------------ #
    def _wrap(self, array: np.ndarray) -> "DistTensor":
        dist = Distribution.natural(array.shape, self.backend.nprocs)
        return DistTensor(array, dist, self.backend)

    def _charge_elementwise(self, nelements: int) -> None:
        self.backend.cost_model.contraction(
            flops=2.0 * nelements, comm_bytes=0.0, messages=0.0, category="elementwise"
        )

    @staticmethod
    def _unwrap(other):
        return other.array if isinstance(other, DistTensor) else other

    def __add__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self.array + self._unwrap(other))

    def __radd__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self._unwrap(other) + self.array)

    def __sub__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self.array - self._unwrap(other))

    def __rsub__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self._unwrap(other) - self.array)

    def __mul__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self.array * self._unwrap(other))

    def __rmul__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self._unwrap(other) * self.array)

    def __truediv__(self, other):
        self._charge_elementwise(self.size)
        return self._wrap(self.array / self._unwrap(other))

    def __neg__(self):
        self._charge_elementwise(self.size)
        return self._wrap(-self.array)

    def conj(self) -> "DistTensor":
        self._charge_elementwise(self.size)
        return self._wrap(np.conj(self.array))

    def copy(self) -> "DistTensor":
        return DistTensor(self.array.copy(), self.distribution, self.backend)

    def __array__(self, dtype=None):
        # Implicit conversion to ndarray implies a gather of all shards.
        self.backend.cost_model.gather(self.nbytes)
        return np.asarray(self.array, dtype=dtype)
