"""Cost model for the simulated distributed backend.

The model combines a per-core floating-point rate with an alpha-beta
(latency / inverse-bandwidth) communication model.  Default parameters are
loosely calibrated to a Stampede2-class machine (KNL nodes, 64 cores per
node, Omni-Path interconnect) but the absolute values only matter up to an
overall scale — the benchmarks reproduce *shapes* (which algorithm wins and
how curves scale), not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class MachineParameters:
    """Hardware parameters of the simulated machine.

    Attributes
    ----------
    flop_rate:
        Sustained floating-point rate per core, in flop/s (dense GEMM-like).
    alpha:
        Per-message latency in seconds (network + software overhead).
    beta:
        Inverse bandwidth in seconds per byte (per link).
    cores_per_node:
        Number of cores on one node (Stampede2 KNL: 64).
    memory_per_node:
        Usable memory per node in bytes (Stampede2 KNL: ~96 GB; the paper's
        64-node RQC run quotes 7808 GB total, i.e. 122 GB/node).
    factorization_efficiency:
        Fraction of peak achieved by distributed (ScaLAPACK-style)
        factorizations relative to GEMM-like contractions.
    local_flop_rate:
        Rate used for process-local (sequential) linear algebra such as the
        eigendecomposition of a gathered Gram matrix.
    """

    flop_rate: float = 5.0e9
    alpha: float = 2.0e-6
    beta: float = 5.0e-10
    cores_per_node: int = 64
    memory_per_node: float = 96.0e9
    factorization_efficiency: float = 0.25
    local_flop_rate: float = 5.0e9

    def nodes(self, nprocs: int, procs_per_node: Optional[int] = None) -> int:
        per_node = procs_per_node or self.cores_per_node
        return max(1, (nprocs + per_node - 1) // per_node)


#: Scalar accumulators of :class:`ExecutionStats`, exposed as properties.
_STAT_SCALARS = ("simulated_seconds", "flops", "comm_bytes", "messages")


class ExecutionStats:
    """Accumulated simulated execution statistics.

    Backed by a private per-instance
    :class:`~repro.telemetry.metrics.MetricsRegistry`: the scalar totals are
    counters (``dist.flops`` etc.), the per-category breakdowns are labeled
    counters, and the peak tensor size is a max-gauge
    (``dist.tensor_bytes_peak``).  The public attribute API — including the
    ``counts`` / ``seconds_by_category`` dict views — is unchanged.
    """

    def __init__(self) -> None:
        from repro.telemetry.metrics import MetricsRegistry

        self.registry = MetricsRegistry()
        for name in _STAT_SCALARS:
            self.registry.counter(f"dist.{name}")
        self.registry.gauge("dist.tensor_bytes_peak")
        self._categories: list = []

    def record(self, category: str, seconds: float, flops: float = 0.0,
               comm_bytes: float = 0.0, messages: float = 0.0) -> None:
        self.registry.counter("dist.simulated_seconds").add(seconds)
        self.registry.counter("dist.flops").add(flops)
        self.registry.counter("dist.comm_bytes").add(comm_bytes)
        self.registry.counter("dist.messages").add(messages)
        if category not in self._categories:
            self._categories.append(category)
        self.registry.counter("dist.ops", category=category).add(1)
        self.registry.counter("dist.seconds", category=category).add(seconds)

    def observe_tensor(self, nbytes: float) -> None:
        self.registry.gauge("dist.tensor_bytes_peak").update_max(nbytes)

    @property
    def peak_tensor_bytes(self) -> float:
        return self.registry.value("dist.tensor_bytes_peak")

    @property
    def counts(self) -> Dict[str, int]:
        """Per-category operation counts (a rebuilt dict view)."""
        return {
            c: self.registry.value("dist.ops", category=c) for c in self._categories
        }

    @property
    def seconds_by_category(self) -> Dict[str, float]:
        """Per-category simulated seconds (a rebuilt dict view)."""
        return {
            c: self.registry.value("dist.seconds", category=c)
            for c in self._categories
        }

    def reset(self) -> None:
        self.registry.reset()
        self._categories.clear()


def _stat_scalar_property(name: str) -> property:
    key = f"dist.{name}"

    def fget(self: ExecutionStats) -> float:
        return self.registry.value(key)

    def fset(self: ExecutionStats, value: float) -> None:
        self.registry.counter(key)._set(value)

    return property(fget, fset, doc=f"Accumulated {name!r} (registry-backed).")


for _name in _STAT_SCALARS:
    setattr(ExecutionStats, _name, _stat_scalar_property(_name))
del _name


class CostModel:
    """Translates operations on distributed tensors into simulated time.

    Parameters
    ----------
    nprocs:
        Number of simulated processes.
    machine:
        Hardware parameters; defaults to a Stampede2-like configuration.
    procs_per_node:
        Processes per node (the paper mostly uses PPN=64, sometimes 16).
    """

    def __init__(
        self,
        nprocs: int = 64,
        machine: Optional[MachineParameters] = None,
        procs_per_node: Optional[int] = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = int(nprocs)
        self.machine = machine or MachineParameters()
        self.procs_per_node = int(procs_per_node or self.machine.cores_per_node)
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------ #
    # Computation
    # ------------------------------------------------------------------ #
    def contraction(self, flops: float, comm_bytes: float = 0.0, messages: float = 0.0,
                    category: str = "contraction") -> None:
        """Charge a distributed tensor contraction.

        ``flops`` are divided over all processes; communication follows the
        caller-supplied estimate (typically a SUMMA-like volume).
        """
        compute = flops / (self.machine.flop_rate * self.nprocs)
        comm = self.machine.alpha * messages + self.machine.beta * comm_bytes
        self.stats.record(category, compute + comm, flops=flops,
                          comm_bytes=comm_bytes, messages=messages)

    def local_compute(self, flops: float, category: str = "local") -> None:
        """Charge process-local sequential computation (e.g. a gathered Gram
        matrix eigendecomposition, Algorithm 5 steps 3-8)."""
        self.stats.record(category, flops / self.machine.local_flop_rate, flops=flops)

    def distributed_factorization(self, m: int, n: int, flops: float,
                                  category: str = "factorization") -> None:
        """Charge a ScaLAPACK-style distributed factorization (SVD/QR/EVD).

        The panel-factorization structure makes these latency-bound for small
        matrices: we charge ``min(m, n) / block`` panel steps, each with a
        logarithmic collective, on top of the (inefficient) bulk flops.
        """
        block = 64
        panels = max(1, min(m, n) // block + 1)
        import math

        compute = flops / (
            self.machine.flop_rate * self.nprocs * self.machine.factorization_efficiency
        )
        comm_messages = panels * max(1.0, math.log2(self.nprocs)) * 4.0
        comm_bytes = panels * (m + n) * 16.0
        comm = self.machine.alpha * comm_messages + self.machine.beta * comm_bytes
        self.stats.record(category, compute + comm, flops=flops,
                          comm_bytes=comm_bytes, messages=comm_messages)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def redistribution(self, nbytes: float, category: str = "redistribution") -> None:
        """Charge an all-to-all redistribution of a tensor (e.g. ``reshape``)."""
        p = self.nprocs
        messages = max(0, p - 1)
        comm_bytes = nbytes  # every element leaves its process once (worst case)
        seconds = self.machine.alpha * messages + self.machine.beta * comm_bytes / max(1, p) * (p - 1) / max(1, p) if p > 1 else 0.0
        # Even on one process a reshape costs a pass over memory.
        seconds += nbytes / (self.machine.flop_rate * 8.0)
        self.stats.record(category, seconds, comm_bytes=comm_bytes if p > 1 else 0.0,
                          messages=messages)

    def gather(self, nbytes: float, category: str = "gather") -> None:
        """Charge gathering a tensor to one process (tree gather)."""
        import math

        p = self.nprocs
        messages = max(1.0, math.log2(p)) if p > 1 else 0.0
        seconds = self.machine.alpha * messages + self.machine.beta * nbytes
        self.stats.record(category, seconds, comm_bytes=nbytes if p > 1 else 0.0,
                          messages=messages)

    def broadcast(self, nbytes: float, category: str = "broadcast") -> None:
        """Charge broadcasting a (small) tensor from one process to all."""
        import math

        p = self.nprocs
        messages = max(1.0, math.log2(p)) if p > 1 else 0.0
        seconds = self.machine.alpha * messages + self.machine.beta * nbytes * (
            math.log2(p) if p > 1 else 0.0
        )
        self.stats.record(category, seconds, comm_bytes=nbytes if p > 1 else 0.0,
                          messages=messages)

    def allreduce(self, nbytes: float, category: str = "allreduce") -> None:
        """Charge an allreduce (ring algorithm: 2·(p-1)/p of the data volume)."""
        import math

        p = self.nprocs
        if p == 1:
            self.stats.record(category, 0.0)
            return
        messages = 2.0 * max(1.0, math.log2(p))
        volume = 2.0 * nbytes * (p - 1) / p
        seconds = self.machine.alpha * messages + self.machine.beta * volume
        self.stats.record(category, seconds, comm_bytes=volume, messages=messages)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def observe_tensor(self, nbytes: float) -> None:
        self.stats.observe_tensor(nbytes)

    @property
    def simulated_seconds(self) -> float:
        return self.stats.simulated_seconds

    def reset(self) -> None:
        self.stats.reset()

    def memory_per_process(self, nbytes: float) -> float:
        """Bytes of a tensor held by each process under an even distribution."""
        return nbytes / self.nprocs

    def fits_in_memory(self, total_bytes: float, safety: float = 0.8) -> bool:
        """Whether a working set of ``total_bytes`` fits in aggregate memory."""
        nodes = self.machine.nodes(self.nprocs, self.procs_per_node)
        return total_bytes <= safety * nodes * self.machine.memory_per_node
