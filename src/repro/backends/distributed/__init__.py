"""Simulated distributed-memory tensor backend (Cyclops/CTF substitute).

The original Koala library runs its distributed experiments with the Cyclops
Tensor Framework on the Stampede2 supercomputer.  Neither MPI nor CTF is
available in this reproduction environment, so this subpackage provides a
*simulated* distributed backend:

* every tensor (:class:`DistTensor`) carries a block-cyclic distribution over
  a virtual processor grid (:mod:`repro.backends.distributed.distribution`),
* every operation is routed through an alpha-beta communication model and a
  per-core flop-rate model (:mod:`repro.backends.distributed.cost_model`,
  :mod:`repro.backends.distributed.comm`) that accumulate simulated execution
  time, communication volume and peak memory,
* data itself is stored densely in local memory so numerical results are
  bit-identical to the NumPy backend.

This preserves the *behavioural* distinctions the paper relies on — reshape
forces an expensive redistribution, distributed factorizations are
latency-bound for small matrices, contraction flops scale with the number of
processes — so the relative performance of the algorithm variants
(QR-SVD vs. local-Gram evolution, BMPS vs. IBMPS contraction, strong/weak
scaling) can be reproduced as cost-model results.
"""

from repro.backends.distributed.cost_model import CostModel, ExecutionStats, MachineParameters
from repro.backends.distributed.comm import SimulatedCommunicator
from repro.backends.distributed.distribution import ProcessorGrid, Distribution
from repro.backends.distributed.dist_tensor import DistTensor
from repro.backends.distributed.backend import DistributedBackend

__all__ = [
    "CostModel",
    "ExecutionStats",
    "MachineParameters",
    "SimulatedCommunicator",
    "ProcessorGrid",
    "Distribution",
    "DistTensor",
    "DistributedBackend",
]
