"""Distributed-memory tensor backend (Cyclops/CTF substitute).

The original Koala library runs its distributed experiments with the Cyclops
Tensor Framework on the Stampede2 supercomputer.  Neither MPI nor CTF is
available in this reproduction environment, so this subpackage provides a
distributed backend with two interchangeable executors:

* ``executor="simulated"`` (default) — every tensor (:class:`DistTensor`)
  carries a block-cyclic distribution over a virtual processor grid
  (:mod:`repro.backends.distributed.distribution`), and every operation is
  routed through an alpha-beta communication model and a per-core flop-rate
  model (:mod:`repro.backends.distributed.cost_model`,
  :mod:`repro.backends.distributed.comm`) that accumulate simulated
  execution time, communication volume and peak memory.  Data is stored
  densely in local memory.
* ``executor="pool"`` — the same surface over a persistent pool of worker
  processes (:class:`ProcessPoolCommunicator`): contractions ship each rank
  its operand blocks and run rank-local, collectives move real bytes, and a
  worker that dies is respawned transparently (or the run fails cleanly with
  a :class:`~repro.backends.interface.BackendExecutionError` once the
  restart budget is spent).  Results are **bitwise identical** to the
  simulated executor for every rank count, because both evaluate the same
  deterministic pairwise contraction plans
  (:mod:`repro.backends.distributed.engine`).

Either way the cost model accumulates the *predicted* execution profile —
reshape forces an expensive redistribution, distributed factorizations are
latency-bound for small matrices, contraction flops scale with the number of
processes — so the relative performance of the algorithm variants
(QR-SVD vs. local-Gram evolution, BMPS vs. IBMPS contraction, strong/weak
scaling) can be reproduced as cost-model results, and the pool executor's
measured wall time can be compared against the prediction
(``BENCH_distributed.json``).
"""

from repro.backends.distributed.cost_model import CostModel, ExecutionStats, MachineParameters
from repro.backends.distributed.comm import (
    PoolError,
    ProcessPoolCommunicator,
    SimulatedCommunicator,
    WorkerFault,
)
from repro.backends.distributed.distribution import ProcessorGrid, Distribution
from repro.backends.distributed.dist_tensor import DistTensor
from repro.backends.distributed.engine import EinsumPlan, execute_plan, plan_einsum
from repro.backends.distributed.backend import DistributedBackend

__all__ = [
    "CostModel",
    "ExecutionStats",
    "MachineParameters",
    "PoolError",
    "ProcessPoolCommunicator",
    "SimulatedCommunicator",
    "WorkerFault",
    "ProcessorGrid",
    "Distribution",
    "DistTensor",
    "EinsumPlan",
    "execute_plan",
    "plan_einsum",
    "DistributedBackend",
]
