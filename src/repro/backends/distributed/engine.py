"""Deterministic pairwise contraction engine for the distributed backend.

Both executors of :class:`~repro.backends.distributed.backend.DistributedBackend`
— the in-process ``simulated`` one and the multi-process ``pool`` one — run
einsums through the same two-phase engine:

1. :func:`plan_einsum` fixes a contraction *plan* from the **global** operand
   shapes: the pairwise contraction order from
   :func:`repro.tensornetwork.contraction_path.find_path`, plus the output
   label along which the computation is block-partitioned across ranks.
2. :func:`execute_plan` evaluates the plan block by block, each block as a
   chain of two-operand ``np.einsum(..., optimize=False)`` calls.

Bitwise parity across executors and rank counts rests on two invariants:

* **Pure-C pairwise kernels.**  Every pairwise step runs with
  ``optimize=False``, which routes it through NumPy's C einsum kernel (a
  direct sum-of-products loop) instead of BLAS.  For identical operand
  buffers the kernel is deterministic; a BLAS GEMM would change its
  reduction blocking (and hence low-order bits) with the matrix extents.
* **Canonical blocks.**  The kernel NumPy picks for a step depends on the
  operands' extents and memory layout, so the *unit of computation* must not
  depend on how many ranks share the work.  The plan therefore fixes a
  canonical partition of the shard label into :data:`CANONICAL_PARTS` blocks
  (fewer when the extent is smaller), and every operand of every block is
  materialized contiguously before its chain runs.  A rank executes a
  contiguous *range* of canonical blocks — block ``b`` is computed by the
  exact same sequence of kernel calls no matter which process owns it or how
  the operand arrived there.

Subscripts the lightweight parser rejects (ellipsis, repeated labels within
a term) fall back to a single whole-tensor ``np.einsum`` call, which is
never partitioned and hence trivially invariant to the rank count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.tensornetwork.contraction_path import find_path
from repro.tensornetwork.einsum_spec import parse_einsum

#: Number of canonical blocks a sharded contraction is split into (fewer when
#: the shard extent is smaller).  This caps useful pool parallelism per
#: einsum and bounds the per-call blocking overhead of the serial executor.
CANONICAL_PARTS = 16


def shard_bounds(extent: int, nparts: int) -> List[Tuple[int, int]]:
    """Contiguous-block partition of ``range(extent)`` into ``nparts`` pieces.

    Blocks are maximally balanced (sizes differ by at most one) and cover the
    range exactly; when ``nparts > extent`` the trailing blocks are empty.
    """
    extent = int(extent)
    nparts = max(1, int(nparts))
    return [
        ((rank * extent) // nparts, ((rank + 1) * extent) // nparts)
        for rank in range(nparts)
    ]


@dataclass(frozen=True)
class EinsumPlan:
    """A contraction plan fixed from global shapes (see module docstring).

    ``shard_label`` is an output label safe to block-partition across ranks
    (``None`` when the output has no such label, e.g. scalar results), with
    ``shard_extent`` its global extent and ``shard_parts`` the canonical
    block count.  ``fallback`` marks subscripts the pairwise planner cannot
    handle; those execute as one whole einsum call.  Plans are immutable and
    picklable, so the driver can ship one plan to every pool worker
    alongside that worker's operand slices.
    """

    subscripts: str
    inputs: Tuple[str, ...]
    output: str
    path: Tuple[Tuple[int, ...], ...]
    steps: Tuple[str, ...]
    shard_label: Optional[str]
    shard_extent: int
    shard_parts: int
    fallback: bool
    total_flops: float
    max_intermediate_size: float

    def canonical_bounds(self) -> List[Tuple[int, int]]:
        """The canonical block partition of the shard label."""
        return shard_bounds(self.shard_extent, self.shard_parts)


def _choose_shard_label(
    inputs: Sequence[str], output: str, extents: dict
) -> Tuple[Optional[str], int]:
    """Pick the output label to shard on: the largest-extent label that is
    kept (never summed) and appears at most once in every term."""
    best: Optional[str] = None
    best_extent = 0
    for label in output:
        if output.count(label) != 1:
            continue
        if any(spec.count(label) > 1 for spec in inputs):
            continue
        extent = int(extents[label])
        if extent > best_extent:
            best, best_extent = label, extent
    return best, best_extent


def plan_einsum(
    subscripts: str, shapes: Sequence[Tuple[int, ...]], strategy: str = "greedy"
) -> EinsumPlan:
    """Fix a contraction plan for ``subscripts`` from the global ``shapes``."""
    shapes = [tuple(int(s) for s in shape) for shape in shapes]
    try:
        spec = parse_einsum(subscripts, n_operands=len(shapes))
        extents = spec.index_dimensions(shapes)
    except ValueError:
        volume = float(np.prod([max(int(np.prod(s or (1,))), 1) for s in shapes]))
        return EinsumPlan(
            subscripts=subscripts, inputs=(), output="", path=(), steps=(),
            shard_label=None, shard_extent=0, shard_parts=0, fallback=True,
            total_flops=8.0 * min(volume, 1e18),
            max_intermediate_size=float(max(
                (int(np.prod(s or (1,))) for s in shapes), default=1)),
        )
    info = find_path(spec, shapes, strategy=strategy)
    inputs = tuple("".join(term) for term in spec.inputs)
    output = "".join(spec.output)
    label, extent = _choose_shard_label(inputs, output, extents)
    if extent < 1:
        label, extent = None, 0
    return EinsumPlan(
        subscripts=subscripts,
        inputs=inputs,
        output=output,
        path=tuple(tuple(pair) for pair in info.path),
        steps=tuple(info.steps),
        shard_label=label,
        shard_extent=extent,
        shard_parts=min(extent, CANONICAL_PARTS) if label else 0,
        fallback=False,
        total_flops=float(info.total_flops),
        max_intermediate_size=float(info.max_intermediate_size),
    )


def _chain(plan: EinsumPlan, operands: Sequence[np.ndarray]) -> np.ndarray:
    """Run the pairwise chain on one block's operands.

    Operands are materialized contiguously first: the C einsum kernel NumPy
    dispatches to depends on operand strides, so the canonical computation
    must see canonical buffers whether a block's data is a fresh view into
    the global array (serial executor) or arrived through a pipe (pool).
    """
    work = [np.ascontiguousarray(op) for op in operands]
    for pair, step in zip(plan.path, plan.steps):
        if len(pair) == 1:
            picked = [work.pop(pair[0])]
        else:
            i, j = sorted(pair)
            second = work.pop(j)
            picked = [work.pop(i), second]
        work.append(np.einsum(step, *picked, optimize=False))
    result = work[0]
    final = plan.steps[-1].split("->")[1] if plan.steps else plan.output
    if final != plan.output:
        # Labels the path kept alive but the output sums away, plus the
        # final axis order, are resolved by one deterministic reduction.
        result = np.einsum(final + "->" + plan.output, result, optimize=False)
    return np.asarray(result)


def execute_plan(
    plan: EinsumPlan,
    operands: Sequence[np.ndarray],
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> np.ndarray:
    """Evaluate a plan on its operands, block by block.

    ``bounds`` selects the block partition of the shard label *relative to
    the given operands*; by default the plan's canonical partition of the
    full extent.  Pool workers receive their operand slices together with
    the relative bounds of the canonical blocks they own, so the very same
    kernel calls run regardless of rank placement.
    """
    arrays = [np.asarray(op) for op in operands]
    if plan.fallback:
        arrays = [np.ascontiguousarray(a) for a in arrays]
        return np.asarray(np.einsum(plan.subscripts, *arrays, optimize=True))
    if plan.shard_label is None:
        return _chain(plan, arrays)
    if bounds is None:
        bounds = plan.canonical_bounds()
    blocks = [
        _chain(plan, slice_operands(plan, arrays, lo, hi)) for lo, hi in bounds
    ]
    return concat_blocks(plan, blocks)


def slice_operands(
    plan: EinsumPlan, operands: Sequence[np.ndarray], lo: int, hi: int
) -> List[np.ndarray]:
    """Restrict every operand carrying the shard label to ``[lo, hi)``."""
    out: List[np.ndarray] = []
    for spec, array in zip(plan.inputs, operands):
        pos = spec.find(plan.shard_label) if plan.shard_label else -1
        if pos >= 0:
            index = [slice(None)] * array.ndim
            index[pos] = slice(lo, hi)
            array = array[tuple(index)]
        out.append(array)
    return out


def concat_blocks(plan: EinsumPlan, blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Reassemble result blocks along the shard axis of the output."""
    if len(blocks) == 1:
        return np.asarray(blocks[0])
    axis = plan.output.index(plan.shard_label)
    return np.concatenate([np.asarray(b) for b in blocks], axis=axis)
