"""Sequential/threaded tensor backend built on NumPy.

This backend operates directly on :class:`numpy.ndarray` objects.  It is the
reference implementation of the :class:`~repro.backends.interface.Backend`
protocol and the one used for all accuracy studies; ``reshape`` and
``transpose`` are (nearly) free here, in contrast with the distributed
backend where they imply data redistribution.

An optional :class:`~repro.utils.flops.FlopCounter` can be attached so that
algorithmic cost can be measured independently of wall-clock noise (used by
the Table II benchmark).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from repro.backends.interface import (
    Backend,
    parse_batched_subscripts,
    rewrite_batched_subscripts,
)
from repro.telemetry.trace import TRACER as _TRACER
from repro.utils.flops import (
    FlopCounter,
    eigh_flops,
    qr_flops,
    svd_flops,
)
from repro.utils.rng import SeedLike, ensure_rng


class NumPyBackend(Backend):
    """Backend implementation over plain :class:`numpy.ndarray` tensors."""

    name = "numpy"

    def __init__(self, flop_counter: Optional[FlopCounter] = None) -> None:
        self.flop_counter = flop_counter

    # ------------------------------------------------------------------ #
    # Creation and conversion
    # ------------------------------------------------------------------ #
    def astensor(self, data: Any, dtype: Optional[np.dtype] = None) -> np.ndarray:
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return arr

    def asarray(self, tensor: np.ndarray) -> np.ndarray:
        return np.asarray(tensor)

    def zeros(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> np.ndarray:
        return np.zeros(tuple(shape), dtype=dtype)

    def ones(self, shape: Sequence[int], dtype: np.dtype = np.complex128) -> np.ndarray:
        return np.ones(tuple(shape), dtype=dtype)

    def eye(self, n: int, dtype: np.dtype = np.complex128) -> np.ndarray:
        return np.eye(n, dtype=dtype)

    def random_uniform(
        self,
        shape: Sequence[int],
        low: float = -1.0,
        high: float = 1.0,
        rng: SeedLike = None,
        dtype: np.dtype = np.complex128,
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        shape = tuple(shape)
        if np.issubdtype(np.dtype(dtype), np.complexfloating):
            data = rng.uniform(low, high, shape) + 1j * rng.uniform(low, high, shape)
        else:
            data = rng.uniform(low, high, shape)
        return np.asarray(data, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, tensor: np.ndarray, shape: Sequence[int]) -> np.ndarray:
        return np.reshape(tensor, tuple(shape))

    def transpose(self, tensor: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        return np.transpose(tensor, tuple(axes))

    def conj(self, tensor: np.ndarray) -> np.ndarray:
        return np.conj(tensor)

    def copy(self, tensor: np.ndarray) -> np.ndarray:
        return np.array(tensor, copy=True)

    # ------------------------------------------------------------------ #
    # Contraction and algebra
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        shapes = tuple(tuple(int(s) for s in op.shape) for op in operands)
        path = _cached_einsum_path(subscripts, shapes)
        # Hottest call site in the library: the explicit `active` guard keeps
        # the disabled-tracing path free of even the span-argument dict.
        if _TRACER.active:
            with _TRACER.span("einsum", subscripts=subscripts):
                result = np.einsum(subscripts, *operands, optimize=path)
        else:
            result = np.einsum(subscripts, *operands, optimize=path)
        if self.flop_counter is not None:
            flops = _cached_einsum_flops(subscripts, shapes)
            if flops is None:
                # Subscripts outside the lightweight parser's grammar
                # (e.g. ellipsis): fall back to a crude volume bound.
                volume = float(np.prod([max(op.size, 1) for op in operands]))
                flops = 8.0 * volume
            self.flop_counter.add("einsum", flops)
        return result

    def einsum_batched(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        """One fused ``np.einsum`` over the whole batch with a cached path.

        Operands whose batch axis has size 1 are squeezed and treated as
        unbatched (the path planner then sees them as shared factors instead
        of broadcast copies); the rest share one extra batch label.  The
        rewritten subscripts reuse the same LRU path cache as :meth:`einsum`,
        so lockstep hot loops plan each (subscripts, shapes) combination once.
        """
        shapes = [tuple(int(s) for s in op.shape) for op in operands]
        _, _, batch_dims, batch = parse_batched_subscripts(subscripts, shapes)
        if batch == 1:
            squeezed = [op.reshape(op.shape[1:]) for op in operands]
            result = self.einsum(subscripts, *squeezed)
            return result[np.newaxis, ...]
        batched_subscripts, _ = rewrite_batched_subscripts(subscripts, batch_dims)
        ops = [
            op.reshape(op.shape[1:]) if dim == 1 else op
            for op, dim in zip(operands, batch_dims)
        ]
        op_shapes = tuple(tuple(int(s) for s in op.shape) for op in ops)
        path = _cached_einsum_path(batched_subscripts, op_shapes)
        if _TRACER.active:
            with _TRACER.span(
                "einsum_batched", subscripts=subscripts, batch=batch
            ):
                result = np.einsum(batched_subscripts, *ops, optimize=path)
        else:
            result = np.einsum(batched_subscripts, *ops, optimize=path)
        if self.flop_counter is not None:
            flops = _cached_einsum_flops(batched_subscripts, op_shapes)
            if flops is None:
                volume = float(np.prod([max(op.size, 1) for op in ops]))
                flops = 8.0 * volume
            self.flop_counter.add("einsum_batched", flops)
        return result

    def tensordot(self, a: np.ndarray, b: np.ndarray, axes) -> np.ndarray:
        result = np.tensordot(a, b, axes=axes)
        if self.flop_counter is not None:
            axes_a, axes_b = _normalize_tensordot_axes(a.ndim, axes)
            k = int(np.prod([a.shape[ax] for ax in axes_a])) if axes_a else 1
            m = a.size // max(k, 1)
            n = b.size // max(k, 1)
            self.flop_counter.add("tensordot", 8.0 * m * k * n)
        return result

    def norm(self, tensor: np.ndarray) -> float:
        return float(np.linalg.norm(np.ravel(tensor)))

    def item(self, tensor: np.ndarray) -> complex:
        arr = np.asarray(tensor)
        if arr.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {arr.shape}")
        return complex(arr.reshape(()))

    # ------------------------------------------------------------------ #
    # Dense factorizations
    # ------------------------------------------------------------------ #
    def svd(self, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"svd expects a matrix, got ndim={matrix.ndim}")
        try:
            u, s, vh = scipy.linalg.svd(matrix, full_matrices=False, lapack_driver="gesdd")
        except np.linalg.LinAlgError:  # pragma: no cover - rare LAPACK failure
            u, s, vh = scipy.linalg.svd(matrix, full_matrices=False, lapack_driver="gesvd")
        if self.flop_counter is not None:
            self.flop_counter.add("svd", svd_flops(*matrix.shape))
        return u, s, vh

    def qr(self, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"qr expects a matrix, got ndim={matrix.ndim}")
        q, r = np.linalg.qr(matrix, mode="reduced")
        if self.flop_counter is not None:
            self.flop_counter.add("qr", qr_flops(*matrix.shape))
        return q, r

    def eigh(self, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"eigh expects a square matrix, got shape {matrix.shape}")
        w, v = np.linalg.eigh(matrix)
        if self.flop_counter is not None:
            self.flop_counter.add("eigh", eigh_flops(matrix.shape[0]))
        return w, v

    # ------------------------------------------------------------------ #
    # Local <-> "distributed" movement (trivial here)
    # ------------------------------------------------------------------ #
    def to_local(self, tensor: np.ndarray) -> np.ndarray:
        return np.asarray(tensor)

    def from_local(self, array: np.ndarray, dtype: Optional[np.dtype] = None) -> np.ndarray:
        return self.astensor(array, dtype=dtype)


#: Zero-storage scalar whose broadcast views stand in for real operands when
#: planning contraction paths (``einsum_path`` only inspects shapes).
_PATH_PROBE = np.empty((), dtype=np.complex128)


@lru_cache(maxsize=4096)
def _cached_einsum_path(subscripts: str, shapes: Tuple[Tuple[int, ...], ...]):
    """Contraction path for ``(subscripts, shapes)``, planned once and reused.

    The einsum calls inside the boundary-contraction hot loops repeat the same
    few subscript/shape combinations thousands of times; re-planning the path
    on every call (``optimize=True``) is measurable overhead.
    """
    probes = [np.broadcast_to(_PATH_PROBE, shape) for shape in shapes]
    try:
        return np.einsum_path(subscripts, *probes, optimize="greedy")[0]
    except Exception:
        # Exotic subscripts the planner rejects: let numpy decide per call.
        return True


@lru_cache(maxsize=4096)
def _cached_einsum_flops(
    subscripts: str, shapes: Tuple[Tuple[int, ...], ...]
) -> Optional[float]:
    """Greedy-path flop estimate for the flop counter, cached like the path.

    Returns ``None`` for subscripts the lightweight parser cannot handle.
    """
    # Deferred import: the contraction-path module lives above the backend
    # layer in the package graph.
    from repro.tensornetwork.contraction_path import find_path
    from repro.tensornetwork.einsum_spec import parse_einsum

    try:
        spec = parse_einsum(subscripts, n_operands=len(shapes))
        info = find_path(spec, list(shapes), strategy="greedy")
        return float(info.total_flops)
    except ValueError:
        return None


def path_cache_stats() -> dict:
    """Hit/miss/size counters of the einsum path and flop-estimate caches.

    Benchmarks read these to report how well repeated hot-loop contractions
    amortize their path planning (a lockstep sampler should show almost-all
    hits after the first site of the first row).
    """
    path = _cached_einsum_path.cache_info()
    flops = _cached_einsum_flops.cache_info()
    return {
        "path": {"hits": path.hits, "misses": path.misses, "size": path.currsize},
        "flops": {"hits": flops.hits, "misses": flops.misses, "size": flops.currsize},
    }


def clear_path_caches() -> None:
    """Drop every cached einsum path and flop estimate (and their counters).

    Call between benchmark measurements so path-planning cost and cache-hit
    counts are attributed to the measured phase, reproducibly across runs.
    """
    _cached_einsum_path.cache_clear()
    _cached_einsum_flops.cache_clear()


def _normalize_tensordot_axes(ndim_a: int, axes) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Normalize NumPy tensordot ``axes`` into explicit axis tuples."""
    if isinstance(axes, int):
        axes_a = tuple(range(ndim_a - axes, ndim_a))
        axes_b = tuple(range(axes))
        return axes_a, axes_b
    axes_a, axes_b = axes
    if isinstance(axes_a, int):
        axes_a = (axes_a,)
    if isinstance(axes_b, int):
        axes_b = (axes_b,)
    return tuple(axes_a), tuple(axes_b)
