"""Observables: weighted sums of Pauli strings.

The class mirrors the Koala API shown in the paper::

    H = Observable.ZZ(3, 4) + 0.2 * Observable.X(1)
    value = qstate.expectation(H, ...)

Sites are flat (row-major) site indices of the lattice the state lives on.
Observables are closed under addition, subtraction and scalar multiplication
and can be converted to dense matrices for exact (statevector) evaluation.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.operators.pauli import PauliString, pauli_matrix


class Observable:
    """A Hermitian observable expressed as a sum of Pauli strings."""

    def __init__(self, terms: Iterable[PauliString] = ()) -> None:
        self.terms: List[PauliString] = [t for t in terms if t.coefficient != 0]

    # ------------------------------------------------------------------ #
    # Constructors for elementary observables (paper-style API)
    # ------------------------------------------------------------------ #
    @staticmethod
    def pauli(label: str, *sites: int, coefficient: complex = 1.0) -> "Observable":
        """A single Pauli-string observable, e.g. ``Observable.pauli("ZZ", 3, 4)``."""
        label = label.upper()
        if len(label) != len(sites):
            raise ValueError(
                f"label {label!r} has {len(label)} factors but {len(sites)} sites were given"
            )
        if len(set(sites)) != len(sites):
            raise ValueError(f"sites must be distinct, got {sites}")
        paulis = {site: l for site, l in zip(sites, label)}
        return Observable([PauliString.from_dict(paulis, coefficient)])

    @staticmethod
    def X(site: int) -> "Observable":
        """Pauli X on one site."""
        return Observable.pauli("X", site)

    @staticmethod
    def Y(site: int) -> "Observable":
        """Pauli Y on one site."""
        return Observable.pauli("Y", site)

    @staticmethod
    def Z(site: int) -> "Observable":
        """Pauli Z on one site."""
        return Observable.pauli("Z", site)

    @staticmethod
    def XX(site_a: int, site_b: int) -> "Observable":
        """X⊗X on two sites."""
        return Observable.pauli("XX", site_a, site_b)

    @staticmethod
    def YY(site_a: int, site_b: int) -> "Observable":
        """Y⊗Y on two sites."""
        return Observable.pauli("YY", site_a, site_b)

    @staticmethod
    def ZZ(site_a: int, site_b: int) -> "Observable":
        """Z⊗Z on two sites."""
        return Observable.pauli("ZZ", site_a, site_b)

    @staticmethod
    def identity(coefficient: complex = 1.0) -> "Observable":
        """A constant (identity) term."""
        return Observable([PauliString((), coefficient)])

    @staticmethod
    def sum(observables: Iterable["Observable"]) -> "Observable":
        """Sum a collection of observables."""
        out = Observable()
        for obs in observables:
            out = out + obs
        return out

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Observable") -> "Observable":
        if not isinstance(other, Observable):
            return NotImplemented
        return Observable(self.terms + other.terms)

    def __sub__(self, other: "Observable") -> "Observable":
        if not isinstance(other, Observable):
            return NotImplemented
        return Observable(self.terms + [(-1.0) * t for t in other.terms])

    def __mul__(self, scalar: complex) -> "Observable":
        if isinstance(scalar, Observable):
            return NotImplemented
        return Observable([t * scalar for t in self.terms])

    __rmul__ = __mul__

    def __neg__(self) -> "Observable":
        return self * (-1.0)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    # ------------------------------------------------------------------ #
    # Inspection / conversion
    # ------------------------------------------------------------------ #
    @property
    def sites(self) -> Tuple[int, ...]:
        """All sites any term acts on, sorted."""
        out = set()
        for term in self.terms:
            out.update(term.sites)
        return tuple(sorted(out))

    def max_site(self) -> int:
        sites = self.sites
        return max(sites) if sites else -1

    def local_terms(self) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
        """Each term as ``(sites, dense matrix on those sites)``.

        Single-site terms give 2x2 matrices, two-site terms 4x4 (lower site
        index as the most significant qubit), and so on.  Constant terms give
        ``((), [[coeff]])``.
        """
        return [(term.sites, term.matrix()) for term in self.terms]

    def to_matrix(self, n_sites: int) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix of the full observable (small n only)."""
        if n_sites <= self.max_site():
            raise ValueError(
                f"observable acts on site {self.max_site()} but only {n_sites} sites requested"
            )
        dim = 2**n_sites
        out = np.zeros((dim, dim), dtype=np.complex128)
        identity = np.eye(2, dtype=np.complex128)
        for term in self.terms:
            factors = [identity] * n_sites
            for site, label in term.paulis:
                factors[site] = pauli_matrix(label)
            acc = np.array([[term.coefficient]], dtype=np.complex128)
            for f in factors:
                acc = np.kron(acc, f)
            out += acc
        return out

    def simplify(self, atol: float = 0.0) -> "Observable":
        """Combine duplicate Pauli strings and drop negligible coefficients."""
        combined = {}
        for term in self.terms:
            key = term.paulis
            combined[key] = combined.get(key, 0.0) + term.coefficient
        terms = [
            PauliString(key, coeff)
            for key, coeff in combined.items()
            if abs(coeff) > atol
        ]
        return Observable(terms)

    def __repr__(self) -> str:
        if not self.terms:
            return "Observable(0)"
        return "Observable(" + " + ".join(repr(t) for t in self.terms) + ")"
