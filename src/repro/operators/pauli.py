"""Pauli strings: products of single-site Pauli operators with a coefficient.

A :class:`PauliString` is the elementary term of an :class:`~repro.operators.observable.Observable`:
``coefficient * P_{s1} ⊗ P_{s2} ⊗ ...`` where each ``P`` is one of X, Y, Z
acting on a distinct site and identity elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def pauli_matrix(label: str) -> np.ndarray:
    """The 2x2 matrix of a single Pauli label (I, X, Y or Z)."""
    try:
        return _PAULI_MATRICES[label.upper()].copy()
    except KeyError:
        raise ValueError(f"unknown Pauli label {label!r}; expected one of I, X, Y, Z") from None


@dataclass(frozen=True)
class PauliString:
    """A weighted product of Pauli operators on named sites.

    Attributes
    ----------
    paulis:
        Mapping from site index to Pauli label ("X", "Y" or "Z"); identity
        factors are simply omitted.
    coefficient:
        Complex weight of the term.
    """

    paulis: Tuple[Tuple[int, str], ...]
    coefficient: complex = 1.0

    @staticmethod
    def from_dict(paulis: Mapping[int, str], coefficient: complex = 1.0) -> "PauliString":
        cleaned = []
        for site, label in sorted(paulis.items()):
            label = label.upper()
            if label == "I":
                continue
            if label not in ("X", "Y", "Z"):
                raise ValueError(f"unknown Pauli label {label!r} on site {site}")
            cleaned.append((int(site), label))
        return PauliString(paulis=tuple(cleaned), coefficient=complex(coefficient))

    @property
    def sites(self) -> Tuple[int, ...]:
        return tuple(site for site, _ in self.paulis)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return len(self.paulis)

    def as_dict(self) -> Dict[int, str]:
        return {site: label for site, label in self.paulis}

    def matrix(self) -> np.ndarray:
        """Dense matrix on the *support* sites only, ordered by site index.

        A two-site string returns a 4x4 matrix with the lower-indexed site as
        the most significant qubit; the identity string returns ``[[coeff]]``
        times the 1x1 identity (i.e. a scalar wrapped in a matrix).
        """
        out = np.array([[self.coefficient]], dtype=np.complex128)
        for _, label in self.paulis:
            out = np.kron(out, _PAULI_MATRICES[label])
        return out

    def __mul__(self, scalar: complex) -> "PauliString":
        return PauliString(self.paulis, self.coefficient * complex(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return self * (-1.0)

    def hermitian_conjugate(self) -> "PauliString":
        """Pauli strings are Hermitian up to the coefficient."""
        return PauliString(self.paulis, np.conj(self.coefficient))

    def __repr__(self) -> str:
        if not self.paulis:
            return f"{self.coefficient} * I"
        body = " ".join(f"{label}{site}" for site, label in self.paulis)
        return f"{self.coefficient} * {body}"
