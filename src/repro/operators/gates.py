"""Standard quantum gates as dense NumPy matrices.

Single-qubit gates are 2x2 matrices; two-qubit gates are returned as 4x4
matrices in the computational basis with qubit ordering ``|q1 q2>`` (first
listed qubit is the most significant).  The PEPS and statevector simulators
reshape them to ``(2, 2, 2, 2)`` tensors ``G[i1, i2, j1, j2]`` (outputs
before inputs) internally.

All functions return fresh arrays so callers may modify them freely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_SQRT2 = np.sqrt(2.0)


# --------------------------------------------------------------------- #
# Single-qubit gates
# --------------------------------------------------------------------- #
def identity() -> np.ndarray:
    """The 2x2 identity."""
    return np.eye(2, dtype=np.complex128)


def X() -> np.ndarray:
    """Pauli X."""
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def Y() -> np.ndarray:
    """Pauli Y."""
    return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


def Z() -> np.ndarray:
    """Pauli Z."""
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


def H() -> np.ndarray:
    """Hadamard."""
    return np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2


def S() -> np.ndarray:
    """Phase gate (sqrt of Z)."""
    return np.array([[1, 0], [0, 1j]], dtype=np.complex128)


def T() -> np.ndarray:
    """pi/8 gate (fourth root of Z)."""
    return np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)


def sqrt_X() -> np.ndarray:
    """Square root of X (used in random-circuit layers)."""
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)


def sqrt_Y() -> np.ndarray:
    """Square root of Y (used in random-circuit layers)."""
    return 0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=np.complex128)


def sqrt_W() -> np.ndarray:
    """Square root of (X + Y)/sqrt(2) (the third Google-RQC single-qubit gate)."""
    w = (X() + Y()) / _SQRT2
    evals, evecs = np.linalg.eigh(w)
    return (evecs * np.sqrt(evals.astype(np.complex128))) @ evecs.conj().T


def Rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    return np.cos(theta / 2) * identity() - 1j * np.sin(theta / 2) * X()


def Ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    return np.cos(theta / 2) * identity() - 1j * np.sin(theta / 2) * Y()


def Rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    return np.cos(theta / 2) * identity() - 1j * np.sin(theta / 2) * Z()


def U3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit rotation (OpenQASM u3 convention)."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


# --------------------------------------------------------------------- #
# Two-qubit gates
# --------------------------------------------------------------------- #
def CNOT() -> np.ndarray:
    """Controlled-NOT with the first qubit as control."""
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = X()
    return out


def CX() -> np.ndarray:
    """Alias for :func:`CNOT`."""
    return CNOT()


def CZ() -> np.ndarray:
    """Controlled-Z."""
    return np.diag([1, 1, 1, -1]).astype(np.complex128)


def SWAP() -> np.ndarray:
    """SWAP gate."""
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
    )


def iSWAP() -> np.ndarray:
    """iSWAP gate (the entangler used by the paper's random quantum circuits)."""
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
    )


def CPHASE(theta: float) -> np.ndarray:
    """Controlled phase rotation."""
    return np.diag([1, 1, 1, np.exp(1j * theta)]).astype(np.complex128)


def XX(theta: float) -> np.ndarray:
    """Ising coupling gate ``exp(-i theta X⊗X / 2)``."""
    return expm_two_site(np.kron(X(), X()), theta)


def ZZ(theta: float) -> np.ndarray:
    """Ising coupling gate ``exp(-i theta Z⊗Z / 2)``."""
    return expm_two_site(np.kron(Z(), Z()), theta)


def expm_two_site(matrix: np.ndarray, theta: float) -> np.ndarray:
    """``exp(-i theta M / 2)`` for a Hermitian 4x4 matrix ``M``."""
    evals, evecs = np.linalg.eigh(matrix)
    return (evecs * np.exp(-0.5j * theta * evals)) @ evecs.conj().T


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether a matrix is unitary to the given tolerance."""
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    return bool(np.allclose(matrix.conj().T @ matrix, np.eye(n), atol=atol))


def as_tensor(gate: np.ndarray, n_qubits: int) -> np.ndarray:
    """Reshape a ``2^n x 2^n`` gate matrix into a rank-``2n`` tensor.

    The result has index order ``(out_1, ..., out_n, in_1, ..., in_n)``.
    """
    gate = np.asarray(gate, dtype=np.complex128)
    dim = 2**n_qubits
    if gate.shape != (dim, dim):
        raise ValueError(
            f"expected a {dim}x{dim} matrix for {n_qubits} qubits, got shape {gate.shape}"
        )
    return gate.reshape((2,) * (2 * n_qubits))


def random_single_qubit_gate(rng) -> np.ndarray:
    """Haar-ish random single-qubit unitary (QR of a Ginibre matrix)."""
    z = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
    q, r = np.linalg.qr(z)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


#: Named gate registry used by the circuit IR.
NAMED_GATES = {
    "I": identity,
    "X": X,
    "Y": Y,
    "Z": Z,
    "H": H,
    "S": S,
    "T": T,
    "SX": sqrt_X,
    "SY": sqrt_Y,
    "SW": sqrt_W,
    "CNOT": CNOT,
    "CX": CX,
    "CZ": CZ,
    "SWAP": SWAP,
    "ISWAP": iSWAP,
}

#: Parameterized gate registry (name -> callable taking the parameters).
PARAMETERIZED_GATES = {
    "RX": Rx,
    "RY": Ry,
    "RZ": Rz,
    "U3": U3,
    "CPHASE": CPHASE,
    "XX": XX,
    "ZZ": ZZ,
}


def get_gate(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Look up a gate by name, applying parameters if it is parameterized."""
    key = name.upper()
    if key in NAMED_GATES:
        if params:
            raise ValueError(f"gate {name!r} takes no parameters")
        return NAMED_GATES[key]()
    if key in PARAMETERIZED_GATES:
        return PARAMETERIZED_GATES[key](*params)
    raise KeyError(f"unknown gate {name!r}")
