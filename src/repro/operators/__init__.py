"""Quantum gates, Pauli strings, observables and lattice Hamiltonians."""

from repro.operators import gates
from repro.operators.pauli import PauliString, pauli_matrix
from repro.operators.observable import Observable
from repro.operators.hamiltonians import (
    Hamiltonian,
    LocalTerm,
    heisenberg_j1j2,
    transverse_field_ising,
)

__all__ = [
    "gates",
    "PauliString",
    "pauli_matrix",
    "Observable",
    "Hamiltonian",
    "LocalTerm",
    "heisenberg_j1j2",
    "transverse_field_ising",
]
