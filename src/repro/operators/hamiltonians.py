"""Lattice Hamiltonians as collections of local terms.

A :class:`Hamiltonian` is a sum of :class:`LocalTerm` objects, each acting on
one or two sites of a 2D square lattice (sites are flat row-major indices).
Both driver applications of the paper are expressed this way:

* :func:`heisenberg_j1j2` — the spin-1/2 J1-J2 Heisenberg model of Eq. (7),
  with nearest-neighbour, diagonal next-nearest-neighbour and magnetic-field
  terms (used for the imaginary-time-evolution study, Fig. 13),
* :func:`transverse_field_ising` — the TFI model of Eq. (8) (used for the
  VQE study, Fig. 14).

:meth:`Hamiltonian.trotter_gates` produces the first-order Trotter-Suzuki
gate sequence ``exp(-tau * H_j)`` consumed by TEBD/ITE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.operators.observable import Observable
from repro.operators.pauli import PauliString, pauli_matrix

_PAULI_LABELS = ("I", "X", "Y", "Z")


@dataclass(frozen=True)
class LocalTerm:
    """A Hermitian operator acting on one or two lattice sites.

    ``sites`` are flat row-major indices; ``matrix`` is 2x2 for one site or
    4x4 for two sites, with the first listed site as the most significant
    qubit.
    """

    sites: Tuple[int, ...]
    matrix: np.ndarray

    def __post_init__(self):
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        expected = 2 ** len(self.sites)
        if matrix.shape != (expected, expected):
            raise ValueError(
                f"term on sites {self.sites} needs a {expected}x{expected} matrix, "
                f"got shape {matrix.shape}"
            )
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def exponential(self, tau: complex) -> np.ndarray:
        """``exp(tau * matrix)`` via eigendecomposition (the matrix is Hermitian)."""
        evals, evecs = np.linalg.eigh(self.matrix)
        return (evecs * np.exp(tau * evals)) @ evecs.conj().T


class Hamiltonian:
    """A sum of local terms on an ``nrow x ncol`` square lattice."""

    def __init__(self, nrow: int, ncol: int, terms: Iterable[LocalTerm] = ()) -> None:
        if nrow < 1 or ncol < 1:
            raise ValueError(f"lattice dimensions must be positive, got {nrow}x{ncol}")
        self.nrow = int(nrow)
        self.ncol = int(ncol)
        self.terms: List[LocalTerm] = []
        for term in terms:
            self.add_term(term)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def n_sites(self) -> int:
        return self.nrow * self.ncol

    def site_index(self, row: int, col: int) -> int:
        """Flat row-major index of lattice position ``(row, col)``."""
        if not (0 <= row < self.nrow and 0 <= col < self.ncol):
            raise ValueError(f"({row}, {col}) outside a {self.nrow}x{self.ncol} lattice")
        return row * self.ncol + col

    def add_term(self, term: LocalTerm) -> None:
        for site in term.sites:
            if not (0 <= site < self.n_sites):
                raise ValueError(
                    f"term site {site} outside the {self.nrow}x{self.ncol} lattice"
                )
        self.terms.append(term)

    def add_one_site(self, site: int, matrix: np.ndarray) -> None:
        self.add_term(LocalTerm((int(site),), matrix))

    def add_two_site(self, site_a: int, site_b: int, matrix: np.ndarray) -> None:
        self.add_term(LocalTerm((int(site_a), int(site_b)), matrix))

    # ------------------------------------------------------------------ #
    # Lattice geometry helpers
    # ------------------------------------------------------------------ #
    def nearest_neighbor_pairs(self) -> List[Tuple[int, int]]:
        """All horizontally and vertically adjacent site pairs."""
        pairs = []
        for r in range(self.nrow):
            for c in range(self.ncol):
                if c + 1 < self.ncol:
                    pairs.append((self.site_index(r, c), self.site_index(r, c + 1)))
                if r + 1 < self.nrow:
                    pairs.append((self.site_index(r, c), self.site_index(r + 1, c)))
        return pairs

    def diagonal_neighbor_pairs(self) -> List[Tuple[int, int]]:
        """All diagonally adjacent site pairs (both diagonals)."""
        pairs = []
        for r in range(self.nrow - 1):
            for c in range(self.ncol):
                if c + 1 < self.ncol:
                    pairs.append((self.site_index(r, c), self.site_index(r + 1, c + 1)))
                if c - 1 >= 0:
                    pairs.append((self.site_index(r, c), self.site_index(r + 1, c - 1)))
        return pairs

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (small lattices only)."""
        n = self.n_sites
        dim = 2**n
        out = np.zeros((dim, dim), dtype=np.complex128)
        for term in self.terms:
            out += _embed_term(term, n)
        return out

    def to_observable(self) -> Observable:
        """Pauli-string decomposition of the Hamiltonian."""
        strings: List[PauliString] = []
        for term in self.terms:
            strings.extend(_pauli_decompose(term))
        return Observable(strings).simplify(atol=1e-14)

    def trotter_gates(self, tau: complex) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
        """First-order Trotter gates ``exp(tau * H_j)`` for every local term.

        For imaginary time evolution pass ``tau = -dt`` (real); for real time
        evolution pass ``tau = -1j * dt``.
        """
        return [(term.sites, term.exponential(tau)) for term in self.terms]

    def ground_state_energy(self, k: int = 1) -> float:
        """Exact smallest eigenvalue via sparse diagonalization (small lattices)."""
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        n = self.n_sites
        if n > 20:
            raise ValueError(f"exact diagonalization of {n} sites is not feasible")
        dim = 2**n
        matrix = sp.csr_matrix((dim, dim), dtype=np.complex128)
        for term in self.terms:
            matrix = matrix + sp.csr_matrix(_embed_term(term, n))
        if dim <= 64:
            evals = np.linalg.eigvalsh(matrix.toarray())
            return float(evals[0])
        evals = spla.eigsh(matrix, k=k, which="SA", return_eigenvectors=False)
        return float(np.min(evals.real))

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return f"Hamiltonian({self.nrow}x{self.ncol}, {len(self.terms)} terms)"


def _embed_term(term: LocalTerm, n_sites: int) -> np.ndarray:
    """Embed a local term into the full ``2^n`` Hilbert space (dense)."""
    support = list(term.sites)
    others = [s for s in range(n_sites) if s not in support]
    # kron puts the support sites first; permute modes back to natural order.
    mat = np.kron(term.matrix, np.eye(2 ** len(others), dtype=np.complex128))
    tensor = mat.reshape((2,) * (2 * n_sites))
    perm = np.argsort(support + others)
    out_perm = list(perm)
    in_perm = [n_sites + p for p in perm]
    tensor = tensor.transpose(out_perm + in_perm)
    return np.ascontiguousarray(tensor).reshape(2**n_sites, 2**n_sites)


def _pauli_decompose(term: LocalTerm) -> List[PauliString]:
    """Decompose a 1- or 2-site Hermitian matrix into Pauli strings."""
    sites = term.sites
    n = len(sites)
    matrix = np.asarray(term.matrix)
    strings: List[PauliString] = []
    labels_iter = np.ndindex(*([4] * n))
    for labels in labels_iter:
        basis = np.array([[1.0]], dtype=np.complex128)
        for idx in labels:
            basis = np.kron(basis, pauli_matrix(_PAULI_LABELS[idx]))
        coeff = np.trace(basis.conj().T @ matrix) / (2**n)
        if abs(coeff) < 1e-14:
            continue
        paulis = {
            site: _PAULI_LABELS[idx]
            for site, idx in zip(sites, labels)
            if _PAULI_LABELS[idx] != "I"
        }
        strings.append(PauliString.from_dict(paulis, coeff))
    return strings


# --------------------------------------------------------------------- #
# Model builders
# --------------------------------------------------------------------- #
def heisenberg_j1j2(
    nrow: int,
    ncol: int,
    j1: Sequence[float] = (1.0, 1.0, 1.0),
    j2: Sequence[float] = (0.5, 0.5, 0.5),
    field: Sequence[float] = (0.2, 0.2, 0.2),
) -> Hamiltonian:
    """The spin-1/2 J1-J2 Heisenberg model of Eq. (7).

    Parameters
    ----------
    nrow, ncol:
        Lattice dimensions.
    j1:
        ``(Jx1, Jy1, Jz1)`` nearest-neighbour couplings.
    j2:
        ``(Jx2, Jy2, Jz2)`` diagonal next-nearest-neighbour couplings.
    field:
        ``(hx, hy, hz)`` transverse/longitudinal field components.

    The paper's Fig. 13 uses ``j1=(1,1,1)``, ``j2=(0.5,0.5,0.5)`` and
    ``field=(0.2,0.2,0.2)`` on a 4x4 lattice.
    """
    x, y, z = pauli_matrix("X"), pauli_matrix("Y"), pauli_matrix("Z")
    xx, yy, zz = np.kron(x, x), np.kron(y, y), np.kron(z, z)
    ham = Hamiltonian(nrow, ncol)
    jx1, jy1, jz1 = j1
    jx2, jy2, jz2 = j2
    hx, hy, hz = field
    for a, b in ham.nearest_neighbor_pairs():
        ham.add_two_site(a, b, jx1 * xx + jy1 * yy + jz1 * zz)
    if any(abs(c) > 0 for c in j2):
        for a, b in ham.diagonal_neighbor_pairs():
            ham.add_two_site(a, b, jx2 * xx + jy2 * yy + jz2 * zz)
    if any(abs(c) > 0 for c in field):
        for s in range(ham.n_sites):
            ham.add_one_site(s, hx * x + hy * y + hz * z)
    return ham


def transverse_field_ising(
    nrow: int,
    ncol: int,
    jz: float = -1.0,
    hx: float = -3.5,
) -> Hamiltonian:
    """The transverse-field Ising model of Eq. (8).

    The paper's VQE study (Fig. 14) uses the ferromagnetic model with
    ``jz = -1`` and ``hx = -3.5`` on a 3x3 lattice.
    """
    x, z = pauli_matrix("X"), pauli_matrix("Z")
    zz = np.kron(z, z)
    ham = Hamiltonian(nrow, ncol)
    for a, b in ham.nearest_neighbor_pairs():
        ham.add_two_site(a, b, jz * zz)
    for s in range(ham.n_sites):
        ham.add_one_site(s, hx * x)
    return ham
