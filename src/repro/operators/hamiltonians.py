"""Lattice Hamiltonians as collections of local terms.

A :class:`Hamiltonian` is a sum of :class:`LocalTerm` objects, each acting on
one or two sites of a 2D lattice (sites are flat row-major indices).  The
geometry — which pairs are bonded, in which order, with what per-bond
coupling scale — comes from a :class:`repro.lattice.Lattice`; builders
iterate ``lattice.bonds()`` instead of open-coding double loops, so new
geometries (checkerboard, anisotropic couplings) change the emitted terms
without touching any builder.  The shipped builders:

* :func:`heisenberg_j1j2` — the spin-1/2 J1-J2 Heisenberg model of Eq. (7),
  with nearest-neighbour, diagonal next-nearest-neighbour and magnetic-field
  terms (used for the imaginary-time-evolution study, Fig. 13),
* :func:`transverse_field_ising` — the TFI model of Eq. (8) (used for the
  VQE study, Fig. 14),
* :func:`hubbard` — the hardcore-boson Hubbard family (hopping,
  neighbour interaction, chemical potential).

:meth:`Hamiltonian.trotter_gates` produces the first-order Trotter-Suzuki
gate sequence ``exp(-tau * H_j)`` consumed by TEBD/ITE; term order follows
the lattice's bond partition, so partitioned geometries get their sweep
order for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.lattice import Lattice, LatticeLike, as_lattice
from repro.operators.observable import Observable
from repro.operators.pauli import PauliString, pauli_matrix

_PAULI_LABELS = ("I", "X", "Y", "Z")


@dataclass(frozen=True)
class LocalTerm:
    """A Hermitian operator acting on one or two lattice sites.

    ``sites`` are flat row-major indices; ``matrix`` is 2x2 for one site or
    4x4 for two sites, with the first listed site as the most significant
    qubit.
    """

    sites: Tuple[int, ...]
    matrix: np.ndarray

    def __post_init__(self):
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        expected = 2 ** len(self.sites)
        if matrix.shape != (expected, expected):
            raise ValueError(
                f"term on sites {self.sites} needs a {expected}x{expected} matrix, "
                f"got shape {matrix.shape}"
            )
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def exponential(self, tau: complex) -> np.ndarray:
        """``exp(tau * matrix)`` via eigendecomposition (the matrix is Hermitian)."""
        evals, evecs = np.linalg.eigh(self.matrix)
        return (evecs * np.exp(tau * evals)) @ evecs.conj().T


class Hamiltonian:
    """A sum of local terms on a 2D lattice.

    The first argument is the geometry: a :class:`repro.lattice.Lattice`,
    or the historical ``(nrow, ncol)`` integer pair, which builds a uniform
    :class:`~repro.lattice.SquareLattice`.
    """

    def __init__(
        self,
        lattice: LatticeLike,
        ncol: Optional[int] = None,
        terms: Iterable[LocalTerm] = (),
    ) -> None:
        self.lattice = as_lattice(lattice, ncol)
        self.terms: List[LocalTerm] = []
        for term in terms:
            self.add_term(term)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def nrow(self) -> int:
        return self.lattice.nrow

    @property
    def ncol(self) -> int:
        return self.lattice.ncol

    @property
    def n_sites(self) -> int:
        return self.lattice.n_sites

    def site_index(self, row: int, col: int) -> int:
        """Flat row-major index of lattice position ``(row, col)``."""
        return self.lattice.site_index(row, col)

    def add_term(self, term: LocalTerm) -> None:
        for site in term.sites:
            if not (0 <= site < self.n_sites):
                raise ValueError(
                    f"term site {site} outside the {self.nrow}x{self.ncol} lattice"
                )
        self.terms.append(term)

    def add_one_site(self, site: int, matrix: np.ndarray) -> None:
        self.add_term(LocalTerm((int(site),), matrix))

    def add_two_site(self, site_a: int, site_b: int, matrix: np.ndarray) -> None:
        self.add_term(LocalTerm((int(site_a), int(site_b)), matrix))

    # ------------------------------------------------------------------ #
    # Lattice geometry helpers (delegated to the lattice layer)
    # ------------------------------------------------------------------ #
    def nearest_neighbor_pairs(self) -> List[Tuple[int, int]]:
        """All horizontally and vertically adjacent site pairs, in bond order."""
        ncol = self.ncol
        return [bond.indices(ncol) for bond in self.lattice.bonds("nn")]

    def diagonal_neighbor_pairs(self) -> List[Tuple[int, int]]:
        """All diagonally adjacent site pairs (both diagonals), in bond order."""
        ncol = self.ncol
        return [bond.indices(ncol) for bond in self.lattice.bonds("nnn")]

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (small lattices only)."""
        n = self.n_sites
        dim = 2**n
        out = np.zeros((dim, dim), dtype=np.complex128)
        for term in self.terms:
            out += _embed_term(term, n)
        return out

    def to_observable(self) -> Observable:
        """Pauli-string decomposition of the Hamiltonian."""
        strings: List[PauliString] = []
        for term in self.terms:
            strings.extend(_pauli_decompose(term))
        return Observable(strings).simplify(atol=1e-14)

    def trotter_gates(self, tau: complex) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
        """First-order Trotter gates ``exp(tau * H_j)`` for every local term.

        For imaginary time evolution pass ``tau = -dt`` (real); for real time
        evolution pass ``tau = -1j * dt``.
        """
        return [(term.sites, term.exponential(tau)) for term in self.terms]

    def ground_state_energy(self, k: int = 1) -> float:
        """Exact smallest eigenvalue via sparse diagonalization (small lattices)."""
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        n = self.n_sites
        if n > 20:
            raise ValueError(f"exact diagonalization of {n} sites is not feasible")
        dim = 2**n
        matrix = sp.csr_matrix((dim, dim), dtype=np.complex128)
        for term in self.terms:
            matrix = matrix + sp.csr_matrix(_embed_term(term, n))
        if dim <= 64:
            evals = np.linalg.eigvalsh(matrix.toarray())
            return float(evals[0])
        evals = spla.eigsh(matrix, k=k, which="SA", return_eigenvectors=False)
        return float(np.min(evals.real))

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return f"Hamiltonian({self.nrow}x{self.ncol}, {len(self.terms)} terms)"


def _embed_term(term: LocalTerm, n_sites: int) -> np.ndarray:
    """Embed a local term into the full ``2^n`` Hilbert space (dense)."""
    support = list(term.sites)
    others = [s for s in range(n_sites) if s not in support]
    # kron puts the support sites first; permute modes back to natural order.
    mat = np.kron(term.matrix, np.eye(2 ** len(others), dtype=np.complex128))
    tensor = mat.reshape((2,) * (2 * n_sites))
    perm = np.argsort(support + others)
    out_perm = list(perm)
    in_perm = [n_sites + p for p in perm]
    tensor = tensor.transpose(out_perm + in_perm)
    return np.ascontiguousarray(tensor).reshape(2**n_sites, 2**n_sites)


def _pauli_decompose(term: LocalTerm) -> List[PauliString]:
    """Decompose a 1- or 2-site Hermitian matrix into Pauli strings."""
    sites = term.sites
    n = len(sites)
    matrix = np.asarray(term.matrix)
    strings: List[PauliString] = []
    labels_iter = np.ndindex(*([4] * n))
    for labels in labels_iter:
        basis = np.array([[1.0]], dtype=np.complex128)
        for idx in labels:
            basis = np.kron(basis, pauli_matrix(_PAULI_LABELS[idx]))
        coeff = np.trace(basis.conj().T @ matrix) / (2**n)
        if abs(coeff) < 1e-14:
            continue
        paulis = {
            site: _PAULI_LABELS[idx]
            for site, idx in zip(sites, labels)
            if _PAULI_LABELS[idx] != "I"
        }
        strings.append(PauliString.from_dict(paulis, coeff))
    return strings


# --------------------------------------------------------------------- #
# Model builders
# --------------------------------------------------------------------- #
def _scheduled_bonds(lattice: Lattice, kind: str):
    """Bonds in sweep order: the lattice's partition groups, concatenated.

    Single-color lattices (plain square) yield the canonical row-major bond
    order — keeping term order, and with it every Trotter/RNG stream,
    bitwise identical to the historical open-coded loops.  Multi-color
    lattices (checkerboard) yield color group after color group.
    """
    for group in lattice.bond_partition(kind):
        yield from group


def heisenberg_j1j2(
    lattice: LatticeLike,
    ncol: Optional[int] = None,
    j1: Sequence[float] = (1.0, 1.0, 1.0),
    j2: Sequence[float] = (0.5, 0.5, 0.5),
    field: Sequence[float] = (0.2, 0.2, 0.2),
) -> Hamiltonian:
    """The spin-1/2 J1-J2 Heisenberg model of Eq. (7).

    Parameters
    ----------
    lattice, ncol:
        The geometry: a :class:`repro.lattice.Lattice` (and ``ncol=None``)
        or the historical ``(nrow, ncol)`` integer pair.  Per-bond coupling
        scales of the lattice multiply the two-site terms.
    j1:
        ``(Jx1, Jy1, Jz1)`` nearest-neighbour couplings.
    j2:
        ``(Jx2, Jy2, Jz2)`` diagonal next-nearest-neighbour couplings.
    field:
        ``(hx, hy, hz)`` transverse/longitudinal field components.

    The paper's Fig. 13 uses ``j1=(1,1,1)``, ``j2=(0.5,0.5,0.5)`` and
    ``field=(0.2,0.2,0.2)`` on a 4x4 lattice.
    """
    x, y, z = pauli_matrix("X"), pauli_matrix("Y"), pauli_matrix("Z")
    xx, yy, zz = np.kron(x, x), np.kron(y, y), np.kron(z, z)
    ham = Hamiltonian(lattice, ncol)
    lat = ham.lattice
    jx1, jy1, jz1 = j1
    jx2, jy2, jz2 = j2
    hx, hy, hz = field
    nn_matrix = jx1 * xx + jy1 * yy + jz1 * zz
    for bond in _scheduled_bonds(lat, "nn"):
        a, b = bond.indices(lat.ncol)
        ham.add_two_site(a, b, bond.scale * nn_matrix)
    if any(abs(c) > 0 for c in j2):
        nnn_matrix = jx2 * xx + jy2 * yy + jz2 * zz
        for bond in _scheduled_bonds(lat, "nnn"):
            a, b = bond.indices(lat.ncol)
            ham.add_two_site(a, b, bond.scale * nnn_matrix)
    if any(abs(c) > 0 for c in field):
        for s in range(ham.n_sites):
            ham.add_one_site(s, hx * x + hy * y + hz * z)
    return ham


def transverse_field_ising(
    lattice: LatticeLike,
    ncol: Optional[int] = None,
    jz: float = -1.0,
    hx: float = -3.5,
) -> Hamiltonian:
    """The transverse-field Ising model of Eq. (8).

    The paper's VQE study (Fig. 14) uses the ferromagnetic model with
    ``jz = -1`` and ``hx = -3.5`` on a 3x3 lattice.  Per-bond coupling
    scales of the lattice multiply the ``ZZ`` terms.
    """
    x, z = pauli_matrix("X"), pauli_matrix("Z")
    zz = np.kron(z, z)
    ham = Hamiltonian(lattice, ncol)
    lat = ham.lattice
    for bond in _scheduled_bonds(lat, "nn"):
        a, b = bond.indices(lat.ncol)
        ham.add_two_site(a, b, bond.scale * (jz * zz))
    for s in range(ham.n_sites):
        ham.add_one_site(s, hx * x)
    return ham


def hubbard(
    lattice: LatticeLike,
    ncol: Optional[int] = None,
    t: float = 1.0,
    v: float = 0.0,
    mu: float = 0.0,
) -> Hamiltonian:
    """The hardcore-boson Hubbard model (tenpy's Bose-Hubbard family, U → ∞).

    On the two-dimensional local space ``{|0>, |1>}`` (empty / occupied)::

        H = -t  Σ_<ij> (b†_i b_j + b†_j b_i)
           + v  Σ_<ij> n_i n_j
           - mu Σ_i    n_i

    with ``b = [[0, 1], [0, 0]]`` and ``n = diag(0, 1)``.  The hardcore
    constraint replaces the on-site ``U`` of the soft-core model, so the
    neighbour interaction ``v`` plays its role.  Per-bond coupling scales of
    the lattice multiply both two-site pieces, which is how checkerboard or
    anisotropic Hubbard variants are expressed.
    """
    b_op = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=np.complex128)
    n_op = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=np.complex128)
    hop = np.kron(b_op.conj().T, b_op) + np.kron(b_op, b_op.conj().T)
    nn = np.kron(n_op, n_op)
    ham = Hamiltonian(lattice, ncol)
    lat = ham.lattice
    pair_matrix = -float(t) * hop + float(v) * nn
    for bond in _scheduled_bonds(lat, "nn"):
        a, b = bond.indices(lat.ncol)
        ham.add_two_site(a, b, bond.scale * pair_matrix)
    if abs(mu) > 0:
        for s in range(ham.n_sites):
            ham.add_one_site(s, -float(mu) * n_op)
    return ham
